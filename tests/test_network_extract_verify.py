"""Tests for BDD extraction from netlists and the BDD-based verifier."""

import pytest

from repro.bdd import BDD
from repro.boolfn import ISF, parse
from repro.network import (Netlist, VerificationError, node_functions,
                           output_functions, simulate_single,
                           verify_against_isfs, verify_equivalent)


def _netlist_and_mgr():
    nl = Netlist(["a", "b", "c"])
    a, b, c = nl.inputs
    f = nl.add_or(nl.add_and(a, b), nl.add_not(c))
    nl.set_output("f", f)
    mgr = BDD(["a", "b", "c"])
    return nl, mgr


class TestExtraction:
    def test_outputs_match_expression(self):
        nl, mgr = _netlist_and_mgr()
        outs = output_functions(nl, mgr)
        assert mgr.fn(outs["f"]) == parse(mgr, "a & b | ~c")

    def test_extraction_agrees_with_simulation(self):
        nl, mgr = _netlist_and_mgr()
        outs = output_functions(nl, mgr)
        for i in range(8):
            assignment = {"a": i & 1, "b": (i >> 1) & 1, "c": (i >> 2) & 1}
            sim = simulate_single(nl, assignment)["f"]
            bdd = mgr.eval(outs["f"], assignment)
            assert sim == int(bdd)

    def test_every_gate_type_extracts(self):
        nl = Netlist(["a", "b"])
        a, b = nl.inputs
        mgr = BDD(["a", "b"])
        gates = {
            "and": nl.add_gate("AND", a, b),
            "or": nl.add_gate("OR", a, b),
            "xor": nl.add_gate("XOR", a, b),
            "nand": nl.add_gate("NAND", a, b),
            "nor": nl.add_gate("NOR", a, b),
            "xnor": nl.add_gate("XNOR", a, b),
            "not": nl.add_not(a),
            "k0": nl.constant(0),
            "k1": nl.constant(1),
        }
        for name, node in gates.items():
            nl.set_output(name, node)
        outs = output_functions(nl, mgr)
        va, vb = mgr.var("a"), mgr.var("b")
        assert outs["and"] == mgr.and_(va, vb)
        assert outs["nand"] == mgr.nand(va, vb)
        assert outs["xor"] == mgr.xor(va, vb)
        assert outs["xnor"] == mgr.xnor(va, vb)
        assert outs["nor"] == mgr.nor(va, vb)
        assert outs["not"] == mgr.not_(va)
        assert outs["k0"] == mgr.false
        assert outs["k1"] == mgr.true

    def test_restrict_to_computes_cone_closure(self):
        nl, mgr = _netlist_and_mgr()
        target = nl.output_node("f")
        bdds = node_functions(nl, mgr, restrict_to={target})
        assert bdds[target] is not None

    def test_input_map_renames(self):
        nl = Netlist(["p"])
        nl.set_output("y", nl.add_not(nl.inputs[0]))
        mgr = BDD(["q"])
        outs = output_functions(nl, mgr, input_map={"p": "q"})
        assert outs["y"] == mgr.not_(mgr.var("q"))


class TestVerifier:
    def test_accepts_compatible_netlist(self):
        nl, mgr = _netlist_and_mgr()
        spec = ISF.from_csf(parse(mgr, "a & b | ~c"))
        assert verify_against_isfs(nl, {"f": spec})

    def test_accepts_dc_freedom(self):
        nl, mgr = _netlist_and_mgr()
        # Specification leaves (a & b & c) region free; netlist says 1.
        on = parse(mgr, "(a & b | ~c) & ~(a & b & c)")
        dc = parse(mgr, "a & b & c")
        spec = ISF.from_on_dc(on, dc)
        assert verify_against_isfs(nl, {"f": spec})

    def test_rejects_wrong_netlist_with_counterexample(self):
        nl, mgr = _netlist_and_mgr()
        spec = ISF.from_csf(parse(mgr, "a | ~c"))
        with pytest.raises(VerificationError) as excinfo:
            verify_against_isfs(nl, {"f": spec})
        witness = excinfo.value.counterexample
        assert witness is not None
        # The witness must actually show a violation.
        assert simulate_single(nl, witness)["f"] != \
            int(mgr.eval(spec.on.node, witness))

    def test_soft_failure_mode(self):
        nl, mgr = _netlist_and_mgr()
        spec = ISF.from_csf(parse(mgr, "a"))
        assert verify_against_isfs(nl, {"f": spec},
                                   raise_on_fail=False) is False

    def test_missing_output_detected(self):
        nl, mgr = _netlist_and_mgr()
        spec = ISF.from_csf(parse(mgr, "a"))
        with pytest.raises(VerificationError):
            verify_against_isfs(nl, {"nope": spec})


class TestVerificationErrorType:
    def test_is_runtime_error_not_assertion_error(self):
        # AssertionError ancestry would let `except AssertionError`
        # blocks (and python -O semantics) swallow real failures.
        assert issubclass(VerificationError, RuntimeError)
        assert not issubclass(VerificationError, AssertionError)

    def test_deprecated_alias_still_importable(self):
        from repro.network.verify import NetlistAssertionError
        assert NetlistAssertionError is VerificationError

    def test_soft_mode_returns_false_without_raising(self):
        nl, mgr = _netlist_and_mgr()
        # Both failure polarities: required 1 produced as 0 (spec "a|b|~c"
        # adds on-set the netlist misses) and required 0 produced as 1.
        for expr in ("a | b | ~c", "a & b & ~c"):
            spec = ISF.from_csf(parse(mgr, expr))
            assert verify_against_isfs(nl, {"f": spec},
                                       raise_on_fail=False) is False

    def test_soft_mode_passes_compatible(self):
        nl, mgr = _netlist_and_mgr()
        spec = ISF.from_csf(parse(mgr, "a & b | ~c"))
        assert verify_against_isfs(nl, {"f": spec},
                                   raise_on_fail=False) is True

    def test_counterexample_names_every_assigned_input(self):
        nl, mgr = _netlist_and_mgr()
        spec = ISF.from_csf(parse(mgr, "a ^ b ^ c"))
        with pytest.raises(VerificationError) as excinfo:
            verify_against_isfs(nl, {"f": spec})
        witness = excinfo.value.counterexample
        assert witness is not None
        assert set(witness) <= {"a", "b", "c"}
        assert all(value in (0, 1) for value in witness.values())

    def test_counterexample_falsifies_the_interval(self):
        nl, mgr = _netlist_and_mgr()
        on = parse(mgr, "a & b & c")
        dc = parse(mgr, "~a & ~b")
        spec = ISF.from_on_dc(on, dc)
        with pytest.raises(VerificationError) as excinfo:
            verify_against_isfs(nl, {"f": spec})
        witness = excinfo.value.counterexample
        produced = simulate_single(nl, witness)["f"]
        in_on = int(mgr.eval(spec.on.node, witness))
        in_off = int(mgr.eval(spec.off.node, witness))
        # The witness must land where the netlist leaves (Q, ~R).
        assert (in_on and not produced) or (in_off and produced)


class TestCounterexampleForms:
    def test_index_form_kept_in_payload(self):
        nl, mgr = _netlist_and_mgr()
        spec = ISF.from_csf(parse(mgr, "a | ~c"))
        with pytest.raises(VerificationError) as excinfo:
            verify_against_isfs(nl, {"f": spec})
        indexed = excinfo.value.index_counterexample
        assert indexed is not None
        assert all(isinstance(var, int) for var in indexed)
        # Both forms describe the same assignment, keyed differently.
        named = excinfo.value.counterexample
        assert named == {mgr.var_name(var): value
                         for var, value in indexed.items()}

    def test_message_reports_inputs_by_name(self):
        nl, mgr = _netlist_and_mgr()
        spec = ISF.from_csf(parse(mgr, "a | ~c"))
        with pytest.raises(VerificationError) as excinfo:
            verify_against_isfs(nl, {"f": spec})
        message = str(excinfo.value)
        named = excinfo.value.counterexample
        for name, value in named.items():
            assert "%s=%d" % (name, value) in message

    def test_equivalence_failure_carries_both_forms(self):
        nl1, mgr = _netlist_and_mgr()
        nl2 = Netlist(["a", "b", "c"])
        a, b, c = nl2.inputs
        nl2.set_output("f", nl2.add_and(a, b))
        with pytest.raises(VerificationError) as excinfo:
            verify_equivalent(nl1, nl2, mgr)
        named = excinfo.value.counterexample
        indexed = excinfo.value.index_counterexample
        assert named is not None and indexed is not None
        assert named == {mgr.var_name(var): value
                         for var, value in indexed.items()}
        assert any("%s=%d" % (name, value) in str(excinfo.value)
                   for name, value in named.items())

    def test_missing_output_has_no_counterexample(self):
        nl, mgr = _netlist_and_mgr()
        spec = ISF.from_csf(parse(mgr, "a"))
        with pytest.raises(VerificationError) as excinfo:
            verify_against_isfs(nl, {"nope": spec})
        assert excinfo.value.counterexample is None
        assert excinfo.value.index_counterexample is None


class TestEquivalence:
    def test_equivalent_netlists(self):
        nl1, mgr = _netlist_and_mgr()
        nl2 = Netlist(["a", "b", "c"])
        a, b, c = nl2.inputs
        # De Morgan'd variant of the same function.
        f = nl2.add_not(nl2.add_and(nl2.add_gate("NAND", a, b), c))
        nl2.set_output("f", f)
        assert verify_equivalent(nl1, nl2, mgr)

    def test_inequivalent_netlists(self):
        nl1, mgr = _netlist_and_mgr()
        nl2 = Netlist(["a", "b", "c"])
        nl2.set_output("f", nl2.inputs[0])
        with pytest.raises(VerificationError):
            verify_equivalent(nl1, nl2, mgr)

    def test_care_set_limited_equivalence(self):
        nl1, mgr = _netlist_and_mgr()
        nl2 = Netlist(["a", "b", "c"])
        nl2.set_output("f", nl2.constant(1))
        # They agree where c = 0 (both give 1).
        care = mgr.not_(mgr.var("c"))
        assert verify_equivalent(nl1, nl2, mgr, care=care)
        with pytest.raises(VerificationError):
            verify_equivalent(nl1, nl2, mgr)

    def test_output_name_mismatch(self):
        nl1, mgr = _netlist_and_mgr()
        nl2 = Netlist(["a", "b", "c"])
        nl2.set_output("g", nl2.inputs[0])
        with pytest.raises(VerificationError):
            verify_equivalent(nl1, nl2, mgr)
