"""Tests for the EXOR bi-decomposition check (Fig. 4 + CSF fast path)."""

from hypothesis import given, settings

from repro.bdd import BDD
from repro.boolfn import ISF, parse
from repro.decomp import (check_exor_bidecomp, derive_exor_component_b,
                          exor_decomposable)

from conftest import build_isf, isf_strategy, make_mgr, tt_strategy
from repro.boolfn import from_truth_table


def _exor_split_exists(on_tt, off_tt):
    """Oracle over 3 vars: some fA(x0,x2) ^ fB(x1,x2) in the interval?

    Minterm index: i = x0 + 2*x1 + 4*x2.
    """
    for fa in range(16):
        for fb in range(16):
            ok = True
            for i in range(8):
                x0, x1, x2 = i & 1, (i >> 1) & 1, (i >> 2) & 1
                value = ((fa >> (x0 + 2 * x2)) & 1) ^ \
                        ((fb >> (x1 + 2 * x2)) & 1)
                if (on_tt >> i) & 1 and not value:
                    ok = False
                    break
                if (off_tt >> i) & 1 and value:
                    ok = False
                    break
            if ok:
                return True
    return False


class TestAgainstOracle:
    @settings(max_examples=50, deadline=None)
    @given(isf_strategy(3))
    def test_fig4_matches_brute_force(self, pair):
        on_tt, off_tt = pair
        mgr = make_mgr(3)
        isf = build_isf(mgr, [0, 1, 2], on_tt, off_tt)
        got = check_exor_bidecomp(isf, [0], [1]) is not None
        assert got == _exor_split_exists(on_tt, off_tt)

    @settings(max_examples=50, deadline=None)
    @given(tt_strategy(3))
    def test_csf_fast_path_matches_brute_force(self, table):
        mgr = make_mgr(3)
        f = from_truth_table(mgr, [0, 1, 2], table)
        isf = ISF.from_csf(mgr.fn(f))
        mask = (1 << 8) - 1
        got = check_exor_bidecomp(isf, [0], [1]) is not None
        assert got == _exor_split_exists(table, ~table & mask)


class TestComponents:
    @settings(max_examples=50, deadline=None)
    @given(isf_strategy(3))
    def test_components_recompose(self, pair):
        on_tt, off_tt = pair
        mgr = make_mgr(3)
        isf = build_isf(mgr, [0, 1, 2], on_tt, off_tt)
        result = check_exor_bidecomp(isf, [0], [1])
        if result is None:
            return
        isf_a, isf_b = result
        f_a = isf_a.cover()
        assert 1 not in f_a.support()  # independent of XB
        isf_b2 = derive_exor_component_b(isf, f_a, [0])
        assert isf_b2 is not None, "B inconsistent after choosing f_A"
        f_b = isf_b2.cover()
        assert 0 not in f_b.support()  # independent of XA
        assert isf.is_compatible(f_a ^ f_b)

    def test_parity_components_are_parities(self):
        mgr = BDD(["a", "b", "c", "d"])
        f = parse(mgr, "a ^ b ^ c ^ d")
        isf = ISF.from_csf(f)
        result = check_exor_bidecomp(isf, ["a", "c"], ["b", "d"])
        assert result is not None
        isf_a, isf_b = result
        f_a = isf_a.cover()
        f_b = derive_exor_component_b(isf, f_a, ["a", "c"]).cover()
        assert isf.is_compatible(f_a ^ f_b)
        assert set(f_a.support_names()) <= {"a", "c"}
        assert set(f_b.support_names()) <= {"b", "d"}

    def test_and_of_xors(self):
        mgr = BDD(["a", "b", "c", "d"])
        f = parse(mgr, "(a ^ b) & (c ^ d)")
        isf = ISF.from_csf(f)
        # The top structure is AND, not EXOR, across ({a,b}, {c,d}).
        assert check_exor_bidecomp(isf, ["a", "b"], ["c", "d"]) is None
        # But it IS EXOR-decomposable... nowhere: check a few splits.
        assert check_exor_bidecomp(isf, ["a"], ["c"]) is None

    def test_xor_of_shared_context(self):
        mgr = BDD(["a", "b", "c"])
        f = parse(mgr, "(a & c) ^ (b | ~c)")
        isf = ISF.from_csf(f)
        result = check_exor_bidecomp(isf, ["a"], ["b"])
        assert result is not None
        isf_a, isf_b = result
        f_a = isf_a.cover()
        f_b = derive_exor_component_b(isf, f_a, ["a"]).cover()
        assert (f_a ^ f_b) == f


class TestPrefilter:
    def test_isf_path_still_exact(self):
        # exor_decomposable must agree with check_exor_bidecomp on ISFs
        # (the pairwise prefilter is only a necessary condition).
        mgr = make_mgr(3)
        for on_tt, off_tt in [(0b10010110, 0b01101001),
                              (0b1000, 0b0110), (0b0, 0b1),
                              (0b10000001, 0b01000010)]:
            isf = build_isf(mgr, [0, 1, 2], on_tt, off_tt)
            assert exor_decomposable(isf, [0], [1]) == \
                (check_exor_bidecomp(isf, [0], [1]) is not None)
