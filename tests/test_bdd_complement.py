"""Differential harness: complement-edge core vs a reference ROBDD.

A thousand randomized expression DAGs are built three ways in parallel:

* on the production complement-edge manager (``repro.bdd.BDD``),
* on :class:`RefBDD`, a deliberately naive ROBDD with *no* complement
  edges and two terminals — the semantics of the pre-complement core,
* as packed integer truth tables (the ground truth).

For every case the harness cross-checks truth tables, supports, ISOP
covers and the complement-edge node counts against the reference
(complement sharing may only ever *shrink* a DAG, never grow it).
The RNG is seeded per case, so any failure reproduces by seed.
"""

import random

import pytest

from repro.bdd import BDD, FALSE, isop
from repro.bdd.isop import cover_to_bdd


class RefBDD:
    """Minimal reference ROBDD without complement edges.

    Nodes are ``(level, lo, hi)`` triples interned in a unique table;
    the terminals are the sentinels ``"F"`` and ``"T"``.  Operations
    are memoised recursive applies — slow and simple on purpose: this
    is the oracle, it must not share design (or bugs) with the
    production core.
    """

    F = "F"
    T = "T"

    def __init__(self, num_vars):
        self.num_vars = num_vars
        self._unique = {}

    def mk(self, level, lo, hi):
        if lo == hi:
            return lo
        key = (level, lo, hi)
        node = self._unique.get(key)
        if node is None:
            node = key
            self._unique[key] = node
        return node

    def var(self, level):
        return self.mk(level, self.F, self.T)

    def level(self, f):
        return self.num_vars if f in (self.F, self.T) else f[0]

    def not_(self, f):
        if f == self.F:
            return self.T
        if f == self.T:
            return self.F
        return self.mk(f[0], self.not_(f[1]), self.not_(f[2]))

    def apply(self, op, f, g):
        if f in (self.F, self.T) and g in (self.F, self.T):
            return self.T if op(f == self.T, g == self.T) else self.F
        level = min(self.level(f), self.level(g))
        f0, f1 = (f[1], f[2]) if self.level(f) == level else (f, f)
        g0, g1 = (g[1], g[2]) if self.level(g) == level else (g, g)
        return self.mk(level, self.apply(op, f0, g0),
                       self.apply(op, f1, g1))

    def node_count(self, f):
        seen = set()
        stack = [f]
        while stack:
            node = stack.pop()
            if node in seen:
                continue
            seen.add(node)
            if node not in (self.F, self.T):
                stack.append(node[1])
                stack.append(node[2])
        return len(seen)


def _random_case(seed, num_vars, num_ops):
    """One differential case: returns (mgr, edge, ref, ref_node, table).

    The expression DAG reuses earlier subterms, so shared substructure
    (where complement edges pay off) occurs naturally.
    """
    rng = random.Random(seed)
    mgr = BDD(["x%d" % i for i in range(num_vars)])
    ref = RefBDD(num_vars)
    full = (1 << (1 << num_vars)) - 1
    terms = []
    for i in range(num_vars):
        table = 0
        for row in range(1 << num_vars):
            if (row >> i) & 1:
                table |= 1 << row
        terms.append((mgr.var(i), ref.var(i), table))
    ops = (("and_", lambda a, b: a and b, int.__and__),
           ("or_", lambda a, b: a or b, int.__or__),
           ("xor", lambda a, b: a != b, int.__xor__))
    for _ in range(num_ops):
        if rng.random() < 0.25:
            e, r, t = rng.choice(terms)
            terms.append((mgr.not_(e), ref.not_(r), t ^ full))
            continue
        name, ref_op, int_op = rng.choice(ops)
        ea, ra, ta = rng.choice(terms)
        eb, rb, tb = rng.choice(terms)
        edge = getattr(mgr, name)(ea, eb)
        terms.append((edge, ref.apply(ref_op, ra, rb),
                      int_op(ta, tb)))
    edge, ref_node, table = terms[-1]
    return mgr, edge, ref_node, table


def _support_of_table(table, num_vars):
    support = set()
    for i in range(num_vars):
        for row in range(1 << num_vars):
            if ((table >> row) & 1) != ((table >> (row ^ (1 << i))) & 1):
                support.add(i)
                break
    return support


NUM_VARS = 5
CHUNKS = 20
CASES_PER_CHUNK = 50  # 20 x 50 = 1000 randomized cases


@pytest.mark.parametrize("chunk", range(CHUNKS))
def test_differential_against_reference(chunk):
    for case in range(CASES_PER_CHUNK):
        seed = chunk * CASES_PER_CHUNK + case
        rng = random.Random(seed)
        num_ops = rng.randint(4, 16)
        mgr, edge, ref_node, table = _random_case(seed, NUM_VARS, num_ops)

        # 1. Truth table: the new core agrees with the integer oracle.
        got = 0
        for row in range(1 << NUM_VARS):
            assignment = {i: (row >> i) & 1 for i in range(NUM_VARS)}
            if mgr.eval(edge, assignment):
                got |= 1 << row
        assert got == table, "seed %d: truth table mismatch" % seed

        # 2. Support: structural support equals semantic support.
        expected_support = _support_of_table(table, NUM_VARS)
        assert set(mgr.support(edge)) == expected_support, \
            "seed %d: support mismatch" % seed

        # 3. Node count: complement sharing never grows the DAG.
        ref_count = RefBDD(NUM_VARS).node_count(ref_node)
        assert mgr.node_count(edge) <= ref_count, \
            "seed %d: complement core grew the DAG" % seed

        # 4. ISOP: the cover reproduces the function exactly and every
        #    cube is an implicant.
        cover, cubes = isop(mgr, edge, edge)
        assert cover == edge, "seed %d: isop cover != function" % seed
        assert cover_to_bdd(mgr, cubes) == edge, \
            "seed %d: cube list disagrees with cover" % seed
        for cube in cubes:
            assert mgr.diff(cube.to_bdd(mgr), edge) == FALSE, \
                "seed %d: non-implicant cube" % seed


def test_interval_isop_differential():
    """ISOP on proper intervals (L < U): cover stays inside the band."""
    for seed in range(100):
        rng = random.Random(10_000 + seed)
        num_ops = rng.randint(4, 12)
        mgr, f_edge, _, f_table = _random_case(
            10_000 + seed, NUM_VARS, num_ops)
        # Derive a don't-care mask from a second expression over the
        # same manager (fresh managers per case keep this cheap).
        dc = mgr.var(rng.randrange(NUM_VARS))
        if rng.random() < 0.5:
            dc = mgr.not_(dc)
        lower = mgr.diff(f_edge, dc)
        upper = mgr.or_(f_edge, dc)
        cover, cubes = isop(mgr, lower, upper)
        assert mgr.diff(lower, cover) == FALSE, "seed %d" % seed
        assert mgr.diff(cover, upper) == FALSE, "seed %d" % seed
        assert cover_to_bdd(mgr, cubes) == cover, "seed %d" % seed
