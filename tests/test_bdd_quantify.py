"""Tests for existential/universal quantification and and_exists."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bdd import (BDD, FALSE, TRUE, and_exists, exists, forall,
                       or_forall)
from repro.boolfn import from_truth_table

from conftest import brute_force, make_mgr, tt_strategy


def _oracle_exists(table, var, n):
    """Existential quantification on a packed truth table."""
    result = 0
    for i in range(1 << n):
        if (table >> i) & 1:
            result |= 1 << i
            result |= 1 << (i ^ (1 << var))
    return result


def _oracle_forall(table, var, n):
    mask = (1 << (1 << n)) - 1
    return mask & ~_oracle_exists(mask & ~table, var, n)


class TestAgainstOracle:
    @settings(max_examples=60, deadline=None)
    @given(tt_strategy(3), st.integers(min_value=0, max_value=2))
    def test_exists_single(self, table, var):
        mgr = make_mgr(3)
        f = from_truth_table(mgr, [0, 1, 2], table)
        got = brute_force(mgr, exists(mgr, [var], f), [0, 1, 2])
        assert got == _oracle_exists(table, var, 3)

    @settings(max_examples=60, deadline=None)
    @given(tt_strategy(3), st.integers(min_value=0, max_value=2))
    def test_forall_single(self, table, var):
        mgr = make_mgr(3)
        f = from_truth_table(mgr, [0, 1, 2], table)
        got = brute_force(mgr, forall(mgr, [var], f), [0, 1, 2])
        assert got == _oracle_forall(table, var, 3)

    @settings(max_examples=40, deadline=None)
    @given(tt_strategy(4))
    def test_exists_set_equals_iterated(self, table):
        mgr = make_mgr(4)
        f = from_truth_table(mgr, [0, 1, 2, 3], table)
        both = exists(mgr, [1, 3], f)
        iterated = exists(mgr, [3], exists(mgr, [1], f))
        assert both == iterated

    @settings(max_examples=40, deadline=None)
    @given(tt_strategy(4), tt_strategy(4))
    def test_and_exists_equals_composition(self, tt_f, tt_g):
        mgr = make_mgr(4)
        f = from_truth_table(mgr, [0, 1, 2, 3], tt_f)
        g = from_truth_table(mgr, [0, 1, 2, 3], tt_g)
        fused = and_exists(mgr, [0, 2], f, g)
        plain = exists(mgr, [0, 2], mgr.and_(f, g))
        assert fused == plain

    @settings(max_examples=40, deadline=None)
    @given(tt_strategy(4), tt_strategy(4))
    def test_or_forall_equals_composition(self, tt_f, tt_g):
        mgr = make_mgr(4)
        f = from_truth_table(mgr, [0, 1, 2, 3], tt_f)
        g = from_truth_table(mgr, [0, 1, 2, 3], tt_g)
        fused = or_forall(mgr, [1, 3], f, g)
        plain = forall(mgr, [1, 3], mgr.or_(f, g))
        assert fused == plain

    @settings(max_examples=40, deadline=None)
    @given(tt_strategy(4), tt_strategy(4))
    def test_fused_walks_on_complemented_edges(self, tt_f, tt_g):
        # Complement edges make NOT free (edge ^ 1); the fused walks
        # must agree with the unfused composition on every polarity
        # combination of their operands.
        mgr = make_mgr(4)
        f = from_truth_table(mgr, [0, 1, 2, 3], tt_f)
        g = from_truth_table(mgr, [0, 1, 2, 3], tt_g)
        for u in (f, mgr.not_(f)):
            for v in (g, mgr.not_(g)):
                assert and_exists(mgr, [0, 3], u, v) == \
                    exists(mgr, [0, 3], mgr.and_(u, v))
                assert or_forall(mgr, [0, 3], u, v) == \
                    forall(mgr, [0, 3], mgr.or_(u, v))

    @settings(max_examples=30, deadline=None)
    @given(tt_strategy(3), tt_strategy(3))
    def test_or_forall_is_the_dual_of_and_exists(self, tt_f, tt_g):
        mgr = make_mgr(3)
        f = from_truth_table(mgr, [0, 1, 2], tt_f)
        g = from_truth_table(mgr, [0, 1, 2], tt_g)
        dual = mgr.not_(and_exists(mgr, [1], mgr.not_(f), mgr.not_(g)))
        assert or_forall(mgr, [1], f, g) == dual

    @settings(max_examples=30, deadline=None)
    @given(tt_strategy(3), tt_strategy(3))
    def test_fused_walks_with_empty_and_full_variable_sets(self, tt_f,
                                                          tt_g):
        mgr = make_mgr(3)
        f = from_truth_table(mgr, [0, 1, 2], tt_f)
        g = from_truth_table(mgr, [0, 1, 2], tt_g)
        assert and_exists(mgr, [], f, g) == mgr.and_(f, g)
        assert or_forall(mgr, [], f, g) == mgr.or_(f, g)
        everything = [0, 1, 2]
        conj = mgr.and_(f, g)
        assert and_exists(mgr, everything, f, g) == \
            (TRUE if conj != FALSE else FALSE)
        disj = mgr.or_(f, g)
        assert or_forall(mgr, everything, f, g) == \
            (TRUE if disj == TRUE else FALSE)


class TestAlgebraicProperties:
    def test_quantifying_absent_variable_is_identity(self):
        mgr = BDD(["a", "b", "c"])
        f = mgr.and_(mgr.var("a"), mgr.var("b"))
        assert exists(mgr, ["c"], f) == f
        assert forall(mgr, ["c"], f) == f

    def test_empty_variable_set_is_identity(self):
        mgr = BDD(["a"])
        f = mgr.var("a")
        assert exists(mgr, [], f) == f
        assert forall(mgr, [], f) == f

    def test_duality(self):
        mgr = BDD(["a", "b", "c"])
        f = mgr.ite(mgr.var("a"), mgr.var("b"), mgr.not_(mgr.var("c")))
        assert forall(mgr, ["a", "b"], f) == \
            mgr.not_(exists(mgr, ["a", "b"], mgr.not_(f)))

    def test_forall_below_exists(self):
        mgr = BDD(["a", "b"])
        f = mgr.xor(mgr.var("a"), mgr.var("b"))
        assert forall(mgr, ["a"], f) == FALSE
        assert exists(mgr, ["a"], f) == TRUE

    def test_result_drops_quantified_support(self):
        mgr = BDD(["a", "b", "c"])
        f = mgr.ite(mgr.var("a"), mgr.var("b"), mgr.var("c"))
        g = exists(mgr, ["b"], f)
        assert 1 not in mgr.support(g)

    def test_exists_over_constants(self):
        mgr = BDD(["a"])
        assert exists(mgr, ["a"], TRUE) == TRUE
        assert exists(mgr, ["a"], FALSE) == FALSE
        assert forall(mgr, ["a"], TRUE) == TRUE

    def test_and_exists_short_circuits_to_false(self):
        mgr = BDD(["a", "b"])
        assert and_exists(mgr, ["a"], FALSE, mgr.var("b")) == FALSE

    def test_quantification_counters(self):
        mgr = BDD(["a", "b", "c"])
        f = mgr.ite(mgr.var("a"), mgr.var("b"), mgr.var("c"))
        g = mgr.or_(mgr.var("a"), mgr.var("c"))
        base = mgr.cache_stats()
        assert base["quantify_calls"] == 0
        assert base["and_exists_calls"] == 0
        exists(mgr, ["a"], f)
        forall(mgr, ["b"], f)
        and_exists(mgr, ["a"], f, g)
        or_forall(mgr, ["c"], f, g)
        stats = mgr.cache_stats()
        assert stats["quantify_calls"] == 2
        assert stats["and_exists_calls"] == 2
        assert stats["quantify_steps"] > 0

    def test_karnaugh_map_example(self):
        # The paper's Fig. 2: quantification over the column variables
        # equals OR-ing (AND-ing) all columns of the Karnaugh map.
        mgr = BDD(["a", "b", "c", "d"])
        a, b, c, d = (mgr.var(v) for v in "abcd")
        f = mgr.or_(mgr.and_(a, b), mgr.and_(mgr.not_(c), d))
        smoothed = exists(mgr, ["a", "b"], f)
        # Some column contains a 1 for every (c, d) where ~c & d holds,
        # and the a&b column makes every row reachable.
        assert smoothed == TRUE
        consensus = forall(mgr, ["a", "b"], f)
        assert consensus == mgr.and_(mgr.not_(c), d)
