"""Failure-injection tests: every safety net must actually catch.

The reproduction leans on three defence layers — ISF consistency
checks, the BDD-based verifier, and the engine's internal invariants.
These tests deliberately break things and assert the breakage is
caught, not silently absorbed.
"""

import pytest

from repro.bdd import BDD
from repro.boolfn import ISF, InconsistentISF, parse
from repro.decomp import (ComponentCache, DecompositionConfig,
                          DecompositionEngine, bi_decompose)
from repro.network import (Netlist, VerificationError, gates as G,
                           verify_against_isfs, verify_equivalent)
from repro.network.mapper import map_netlist, verify_mapping

from conftest import make_mgr


class TestPoisonedCache:
    def test_wrong_cache_entry_produces_wrong_netlist_caught_by_verifier(
            self):
        # Insert a bogus (function, node) pair: claim node computes
        # x0 & x1 while it actually computes x0 | x1.  The engine
        # trusts its cache (as the paper's does); the independent
        # verifier must catch the corruption.
        mgr = make_mgr(2)
        netlist = Netlist(mgr.var_names)
        var_nodes = {v: netlist.input_node(mgr.var_name(v))
                     for v in range(2)}
        cache = ComponentCache()
        bogus_node = netlist.add_or(var_nodes[0], var_nodes[1])
        cache.insert(parse(mgr, "x0 & x1"), bogus_node)
        engine = DecompositionEngine(mgr, netlist, var_nodes,
                                     cache=cache)
        spec = ISF.from_csf(parse(mgr, "x0 & x1"))
        _csf, node = engine.decompose(spec)
        netlist.set_output("f", node)
        with pytest.raises(VerificationError):
            verify_against_isfs(netlist, {"f": spec})


class TestCorruptedNetlists:
    def _decomposed(self):
        mgr = make_mgr(4)
        spec = {"f": parse(mgr, "(x0 ^ x1) & x2 | x3")}
        result = bi_decompose(spec)
        return mgr, spec, result.netlist

    def test_gate_type_flip_caught(self):
        mgr, spec, netlist = self._decomposed()
        for node in netlist.reachable_from_outputs():
            if netlist.types[node] == G.AND:
                netlist.types[node] = G.OR  # inject the fault
                break
        else:
            pytest.skip("no AND gate to corrupt")
        with pytest.raises(VerificationError) as excinfo:
            verify_against_isfs(netlist, spec)
        # The counterexample must really demonstrate the bug.
        assert excinfo.value.counterexample is not None

    def test_fanin_swap_to_wrong_signal_caught(self):
        mgr, spec, netlist = self._decomposed()
        victim = None
        for node in sorted(netlist.reachable_from_outputs()):
            if netlist.types[node] in G.TWO_INPUT_TYPES:
                victim = node
        assert victim is not None
        a, _b = netlist.fanins[victim]
        netlist.fanins[victim] = (a, a)  # tie both fan-ins together
        assert not verify_against_isfs(netlist, spec,
                                       raise_on_fail=False)

    def test_equivalence_check_catches_single_gate_difference(self):
        mgr = make_mgr(3)
        spec = {"f": parse(mgr, "x0 & x1 | x2")}
        a = bi_decompose(spec).netlist
        b = bi_decompose(spec).netlist
        assert verify_equivalent(a, b, mgr)
        for node in b.reachable_from_outputs():
            if b.types[node] == G.OR:
                b.types[node] = G.XOR
                break
        # x0&x1 ^ x2 differs from x0&x1 | x2 at x0=x1=x2=1.
        with pytest.raises(VerificationError):
            verify_equivalent(a, b, mgr)


class TestInconsistentInputs:
    def test_overlapping_interval_rejected_at_construction(self):
        mgr = make_mgr(2)
        with pytest.raises(InconsistentISF):
            ISF(parse(mgr, "x0"), parse(mgr, "x0 & x1"))

    def test_engine_never_sees_inconsistent_interval(self):
        # All derivation formulas must keep intervals consistent; run
        # with invariant checking to make the claim executable.
        mgr = make_mgr(5)
        spec = {"f": parse(mgr, "(x0 | x1) & (x2 ^ x3) | ~x4 & x0")}
        config = DecompositionConfig(check_invariants=True)
        result = bi_decompose(spec, config=config, verify=True)
        assert result.stats.calls > 0


class TestMapperSafety:
    def test_verify_mapping_catches_tampering(self):
        mgr = make_mgr(2)
        nl = Netlist(mgr.var_names)
        nl.set_output("y", nl.add_xor(*nl.inputs))
        mapping = map_netlist(nl)
        assert verify_mapping(mapping, mgr)
        # Swap the chosen XOR2 for the same-arity XNOR2: function flips.
        from repro.network.mapper import default_library
        xnor2 = next(c for c in default_library() if c.name == "XNOR2")
        tampered = next(m for m in mapping.matches
                        if m.cell.name == "XOR2")
        tampered.cell = xnor2
        with pytest.raises(AssertionError):
            verify_mapping(mapping, mgr)
