"""Tests for the multi-valued (MIN/MAX) bi-decomposition extension."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mvlogic import (InconsistentMVISF, MVDecomposer, MVISF,
                           MVNetlist, mv_decompose)


def mv_isf_strategy(shape=(3, 3), m=3):
    size = int(np.prod(shape))
    return st.tuples(
        st.lists(st.integers(0, m - 1), min_size=size, max_size=size),
        st.lists(st.integers(0, m - 1), min_size=size, max_size=size),
    ).map(lambda pair: _to_isf(pair, shape, m))


def _to_isf(pair, shape, m):
    a = np.array(pair[0]).reshape(shape)
    b = np.array(pair[1]).reshape(shape)
    return MVISF(np.minimum(a, b), np.maximum(a, b), m)


class TestMVISF:
    def test_inconsistent_rejected(self):
        with pytest.raises(InconsistentMVISF):
            MVISF(np.array([2]), np.array([1]), 3)

    def test_bounds_validated(self):
        with pytest.raises(ValueError):
            MVISF(np.array([0]), np.array([3]), 3)
        with pytest.raises(ValueError):
            MVISF(np.array([0, 0]), np.array([0]), 2)

    def test_from_function_and_compatibility(self):
        values = np.array([[0, 1], [2, 1]])
        isf = MVISF.from_function(values, 3)
        assert isf.is_completely_specified()
        assert isf.is_compatible(values)
        assert not isf.is_compatible(values + 0 * values + 1 - 1 == 0)

    def test_from_table_defaults_to_dc(self):
        isf = MVISF.from_table((2, 2), 3, [((0, 0), 2)])
        assert isf.lo[0, 0] == 2 and isf.hi[0, 0] == 2
        assert isf.lo[1, 1] == 0 and isf.hi[1, 1] == 2
        assert isf.dc_count() == 6

    def test_support_of_literal(self):
        values = np.array([[0, 1, 2], [0, 1, 2]])  # depends on axis 1
        isf = MVISF.from_function(values, 3)
        assert isf.structural_support() == (1,)

    def test_iterative_inessential_removal(self):
        # Each axis individually removable only after the other: the
        # classic case needing the greedy sweep.
        lo = np.array([[0, 0], [0, 2]])
        hi = np.array([[2, 2], [2, 2]])
        isf = MVISF(lo, hi, 3)
        reduced, removed = isf.remove_inessential()
        assert len(removed) == 2
        assert reduced.lo.shape == (1, 1)

    def test_smooth_essential_rejected(self):
        values = np.array([[0, 2], [2, 0]])
        isf = MVISF.from_function(values, 3)
        with pytest.raises(ValueError):
            isf.smooth(0)


class TestMVNetlist:
    def test_literal_and_constants(self):
        nl = MVNetlist((3,), 3)
        lit = nl.literal(0, [2, 0, 1])
        assert np.array_equal(nl.evaluate(lit), np.array([2, 0, 1]))
        const = nl.literal(0, [1, 1, 1])
        assert nl.types[const] == "CONST"

    def test_min_max_semantics(self):
        nl = MVNetlist((3, 3), 3)
        a = nl.input_node(0)
        b = nl.input_node(1)
        lo = nl.add_min(a, b)
        hi = nl.add_max(a, b)
        grid = np.indices((3, 3))
        assert np.array_equal(nl.evaluate(lo),
                              np.minimum(grid[0], grid[1]))
        assert np.array_equal(nl.evaluate(hi),
                              np.maximum(grid[0], grid[1]))

    def test_constant_folding(self):
        nl = MVNetlist((3,), 3)
        a = nl.input_node(0)
        assert nl.add_min(a, nl.constant(2)) == a
        assert nl.add_max(a, nl.constant(0)) == a
        assert nl.types[nl.add_min(a, nl.constant(0))] == "CONST"
        assert nl.add_min(a, a) == a

    def test_unary_folding(self):
        nl = MVNetlist((3,), 3)
        a = nl.input_node(0)
        assert nl.unary(a, [0, 1, 2]) == a
        assert nl.types[nl.unary(a, [1, 1, 1])] == "CONST"
        swap = nl.unary(a, [2, 1, 0])
        assert np.array_equal(nl.evaluate(swap), np.array([2, 1, 0]))

    def test_structural_hashing(self):
        nl = MVNetlist((3, 3), 3)
        a, b = nl.input_node(0), nl.input_node(1)
        assert nl.add_min(a, b) == nl.add_min(b, a)


class TestDecomposition:
    @settings(max_examples=40, deadline=None)
    @given(mv_isf_strategy())
    def test_random_intervals_decompose_compatibly(self, isf):
        nl, values, stats = mv_decompose({"f": isf}, isf.domains,
                                         isf.out_size)
        out = nl.evaluate_outputs()["f"]
        assert isf.is_compatible(out)
        resolved = (stats.terminal + stats.strong_max + stats.strong_min
                    + stats.weak_max + stats.weak_min + stats.shannon
                    + stats.cache_hits)
        assert resolved == stats.calls

    def test_exact_reproduction_of_csf(self):
        rng = np.random.default_rng(7)
        values = rng.integers(0, 4, size=(3, 2, 3))
        isf = MVISF.from_function(values, 4)
        nl, _v, _s = mv_decompose({"f": isf}, (3, 2, 3), 4)
        assert np.array_equal(nl.evaluate_outputs()["f"], values)

    def test_max_structure_found(self):
        g = np.array([0, 2, 1])
        h = np.array([1, 0, 2])
        f = np.maximum(g[:, None], h[None, :])
        isf = MVISF.from_function(f, 3)
        nl, _v, stats = mv_decompose({"f": isf}, (3, 3), 3)
        assert stats.strong_max == 1
        assert stats.shannon == 0
        counts = nl.gate_counts()
        assert counts.get("MAX") == 1

    def test_min_structure_found(self):
        g = np.array([0, 2, 1])
        h = np.array([1, 0, 2])
        f = np.minimum(g[:, None], h[None, :])
        isf = MVISF.from_function(f, 3)
        nl, _v, stats = mv_decompose({"f": isf}, (3, 3), 3)
        assert stats.strong_min == 1

    def test_boolean_special_case_matches_or(self):
        # m = 2: MAX == OR; a | b must decompose into a single MAX of
        # two literals.
        f = np.array([[0, 1], [1, 1]])
        isf = MVISF.from_function(f, 2)
        nl, _v, stats = mv_decompose({"f": isf}, (2, 2), 2)
        assert stats.strong_max == 1
        assert np.array_equal(nl.evaluate_outputs()["f"], f)

    def test_dont_cares_simplify_result(self):
        rng = np.random.default_rng(3)
        values = rng.integers(0, 3, size=(3, 3, 2))
        tight = MVISF.from_function(values, 3)
        loose = MVISF(np.where(values == 2, 2, 0),
                      np.where(values == 0, 0, 2), 3)
        nl_t, _v, _s = mv_decompose({"f": tight}, (3, 3, 2), 3)
        nl_l, _v2, _s2 = mv_decompose({"f": loose}, (3, 3, 2), 3)
        assert loose.is_compatible(nl_l.evaluate_outputs()["f"])
        gates_t = sum(v for k, v in nl_t.gate_counts().items()
                      if k in ("MIN", "MAX"))
        gates_l = sum(v for k, v in nl_l.gate_counts().items()
                      if k in ("MIN", "MAX"))
        assert gates_l <= gates_t

    def test_multi_output_shared_engine(self):
        rng = np.random.default_rng(11)
        values = rng.integers(0, 3, size=(3, 3))
        isf = MVISF.from_function(values, 3)
        nl, _v, stats = mv_decompose({"a": isf, "b": isf}, (3, 3), 3)
        assert stats.cache_hits >= 1
        outs = nl.evaluate_outputs()
        assert np.array_equal(outs["a"], outs["b"])

    def test_decomposability_checks_directly(self):
        eng = MVDecomposer((3, 3), 3)
        g = np.array([0, 1, 2])
        f_max = np.maximum(g[:, None], g[None, :])
        isf = MVISF.from_function(f_max, 3)
        assert eng.max_decomposable(isf, [0], [1])
        # MIN structure is absent from this MAX function.
        assert not eng.min_decomposable(isf, [0], [1])
