"""Shared test helpers: truth-table oracles and hypothesis strategies."""

import pytest
from hypothesis import strategies as st

from repro.bdd import BDD
from repro.boolfn import from_truth_table
from repro.boolfn.isf import ISF


def make_mgr(n, prefix="x"):
    """Manager with n variables x0..x{n-1}."""
    return BDD(["%s%d" % (prefix, i) for i in range(n)])


def brute_force(mgr, node, variables):
    """Truth table of *node* over *variables* as a packed int."""
    table = 0
    for i in range(1 << len(variables)):
        assignment = {v: (i >> k) & 1 for k, v in enumerate(variables)}
        full = {v: 0 for v in range(mgr.num_vars)}
        full.update(assignment)
        if mgr.eval(node, full):
            table |= 1 << i
    return table


def tt_strategy(n):
    """Hypothesis strategy for packed truth tables over n variables."""
    return st.integers(min_value=0, max_value=(1 << (1 << n)) - 1)


def isf_strategy(n):
    """Hypothesis strategy for (on_tt, off_tt) pairs with empty overlap."""
    def split(pair):
        on, care = pair
        return on & care, ~on & care & ((1 << (1 << n)) - 1)
    return st.tuples(tt_strategy(n), tt_strategy(n)).map(split)


def build_isf(mgr, variables, on_tt, off_tt):
    """ISF from packed on/off truth tables over *variables*."""
    on = mgr.fn(from_truth_table(mgr, variables, on_tt))
    off = mgr.fn(from_truth_table(mgr, variables, off_tt))
    return ISF(on, off)


@pytest.fixture
def mgr4():
    """A fresh 4-variable manager (a, b, c, d)."""
    return BDD(["a", "b", "c", "d"])


@pytest.fixture
def mgr6():
    """A fresh 6-variable manager (x0..x5)."""
    return make_mgr(6)
