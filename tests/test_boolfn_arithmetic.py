"""Exhaustive tests for the bit-vector arithmetic builders."""

import pytest

from repro.bdd import BDD
from repro.boolfn import arithmetic as arith

from conftest import make_mgr


def _mgr_and_vectors(width):
    a_vars = list(range(width))
    b_vars = list(range(width, 2 * width))
    mgr = make_mgr(2 * width)
    return mgr, arith.var_vector(mgr, a_vars), arith.var_vector(mgr, b_vars)


def _assignment(a, b, width):
    assignment = {}
    for i in range(width):
        assignment[i] = (a >> i) & 1
        assignment[width + i] = (b >> i) & 1
    return assignment


def _value(mgr, bits, assignment):
    return sum(1 << i for i, bit in enumerate(bits)
               if mgr.eval(bit, assignment))


WIDTH = 3
ALL_PAIRS = [(a, b) for a in range(1 << WIDTH) for b in range(1 << WIDTH)]


class TestAddSub:
    def test_ripple_add_exhaustive(self):
        mgr, xs, ys = _mgr_and_vectors(WIDTH)
        total, carry = arith.ripple_add(mgr, xs, ys)
        for a, b in ALL_PAIRS:
            assignment = _assignment(a, b, WIDTH)
            got = _value(mgr, total + [carry], assignment)
            assert got == a + b, (a, b)

    def test_unequal_widths_zero_extend(self):
        mgr, xs, ys = _mgr_and_vectors(WIDTH)
        total, carry = arith.ripple_add(mgr, xs[:2], ys)
        for a, b in [(3, 7), (1, 5), (2, 2)]:
            assignment = _assignment(a & 3, b, WIDTH)
            got = _value(mgr, total + [carry], assignment)
            assert got == (a & 3) + b

    def test_ripple_sub_exhaustive_modular(self):
        mgr, xs, ys = _mgr_and_vectors(WIDTH)
        diff = arith.ripple_sub(mgr, xs, ys)
        for a, b in ALL_PAIRS:
            assignment = _assignment(a, b, WIDTH)
            got = _value(mgr, diff, assignment)
            assert got == (a - b) % (1 << WIDTH), (a, b)

    def test_negate(self):
        mgr, xs, _ys = _mgr_and_vectors(WIDTH)
        neg = arith.negate(mgr, xs)
        for a in range(1 << WIDTH):
            assignment = _assignment(a, 0, WIDTH)
            assert _value(mgr, neg, assignment) == (-a) % (1 << WIDTH)


class TestMultiply:
    def test_multiply_exhaustive(self):
        mgr, xs, ys = _mgr_and_vectors(WIDTH)
        product = arith.multiply(mgr, xs, ys)
        for a, b in ALL_PAIRS:
            assignment = _assignment(a, b, WIDTH)
            assert _value(mgr, product, assignment) == a * b, (a, b)

    def test_truncated_width(self):
        mgr, xs, ys = _mgr_and_vectors(WIDTH)
        product = arith.multiply(mgr, xs, ys, width=3)
        for a, b in ALL_PAIRS:
            assignment = _assignment(a, b, WIDTH)
            assert _value(mgr, product, assignment) == (a * b) % 8

    def test_square(self):
        mgr, xs, _ys = _mgr_and_vectors(WIDTH)
        squared = arith.square(mgr, xs)
        for a in range(1 << WIDTH):
            assignment = _assignment(a, 0, WIDTH)
            assert _value(mgr, squared, assignment) == a * a


class TestComparisons:
    def test_equal_exhaustive(self):
        mgr, xs, ys = _mgr_and_vectors(WIDTH)
        eq = arith.equal(mgr, xs, ys)
        for a, b in ALL_PAIRS:
            assert mgr.eval(eq, _assignment(a, b, WIDTH)) == (a == b)

    def test_less_than_exhaustive(self):
        mgr, xs, ys = _mgr_and_vectors(WIDTH)
        lt = arith.unsigned_less_than(mgr, xs, ys)
        for a, b in ALL_PAIRS:
            assert mgr.eval(lt, _assignment(a, b, WIDTH)) == (a < b)


class TestVectorHelpers:
    def test_const_vector(self):
        mgr = make_mgr(1)
        bits = arith.const_vector(mgr, 0b101, 4)
        assert [bit == mgr.true for bit in bits] == [True, False, True,
                                                     False]

    def test_mux_vector(self):
        mgr, xs, ys = _mgr_and_vectors(2)
        sel_mgr_var = mgr.add_var("sel")
        sel = mgr.var("sel")
        muxed = arith.mux_vector(mgr, sel, xs, ys)
        assignment = _assignment(0b10, 0b01, 2)
        assignment[sel_mgr_var] = 1
        assert _value(mgr, muxed, assignment) == 0b10
        assignment[sel_mgr_var] = 0
        assert _value(mgr, muxed, assignment) == 0b01

    def test_bitwise(self):
        mgr, xs, ys = _mgr_and_vectors(2)
        anded = arith.bitwise(mgr, mgr.and_, xs, ys)
        assignment = _assignment(0b11, 0b10, 2)
        assert _value(mgr, anded, assignment) == 0b10

    def test_weighted_sum(self):
        mgr = make_mgr(3)
        total = arith.weighted_sum(mgr, [0, 1, 2], [1, 2, 4], width=4)
        for i in range(8):
            assignment = {k: (i >> k) & 1 for k in range(3)}
            expected = (i & 1) + 2 * ((i >> 1) & 1) + 4 * ((i >> 2) & 1)
            assert _value(mgr, total, assignment) == expected


class TestFullAdder:
    @pytest.mark.parametrize("a,b,cin", [(x, y, z) for x in (0, 1)
                                         for y in (0, 1) for z in (0, 1)])
    def test_full_adder_truth_table(self, a, b, cin):
        mgr = BDD(["a", "b", "cin"])
        s, cout = arith.full_adder(mgr, mgr.var("a"), mgr.var("b"),
                                   mgr.var("cin"))
        assignment = {"a": a, "b": b, "cin": cin}
        total = a + b + cin
        assert mgr.eval(s, assignment) == bool(total & 1)
        assert mgr.eval(cout, assignment) == bool(total >> 1)
