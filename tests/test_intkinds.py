"""Tests for the int-kind abstract interpretation (``intkinds``).

Covers the lattice algebra, the structural transfer functions of the
packed-edge encoding, annotation seeding, the interprocedural fixpoint
(including termination on recursive helpers), the scope predicate, the
five ``intkind-*`` rules, the hot-path scope extension to the
``repro.network`` verify path, and the issue's mutation canaries:
copies of the real ``manager.py``/``quantify.py`` with seeded
kind-confusion bugs that ``repro selfcheck`` must report with the
right rule ids and line numbers.
"""

import io
import textwrap
from pathlib import Path

from repro.analysis.repolint import run_repolint
from repro.analysis.repolint.framework import load_project
from repro.analysis.repolint.intkinds import (ANNOTATION_KINDS, CHECKED_KINDS,
                                              COUNT, EDGE, INT_KINDS,
                                              KNOWN_ATTRS, LEVEL, MAX_ROUNDS,
                                              NODE, PLAIN, SID, TOP, VARID,
                                              Arr, IntKindAnalysis,
                                              analyze_project,
                                              annotation_kind,
                                              in_intkind_scope, join)
from repro.analysis.repolint.rules_determinism import _in_hot_path
from repro.cli import main as cli_main

REPO_ROOT = Path(__file__).resolve().parent.parent

DEMO_REL = "src/repro/bdd/demo.py"


def _analyze(tmp_path, source, rel=DEMO_REL):
    """Write *source* at *rel* under tmp_path and analyze it."""
    path = tmp_path / rel
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source))
    project, broken = load_project([tmp_path / "src"], tmp_path)
    assert not broken, broken
    return analyze_project(project)


def _fn(analysis, name, rel=DEMO_REL):
    return analysis.functions[(rel, name)]


def _rules_of(analysis):
    return sorted({rule for rule, _rel, _line, _msg in analysis.findings})


# ---------------------------------------------------------------------
# Lattice algebra
# ---------------------------------------------------------------------
class TestLattice:
    def test_bottom_is_identity(self):
        for kind in INT_KINDS + (TOP,):
            assert join(None, kind) == kind
            assert join(kind, None) == kind
        assert join(None, None) is None

    def test_join_idempotent(self):
        for kind in INT_KINDS:
            assert join(kind, kind) == kind

    def test_join_commutative(self):
        for a in INT_KINDS:
            for b in INT_KINDS:
                assert join(a, b) == join(b, a)

    def test_distinct_kinds_join_to_top(self):
        assert join(EDGE, NODE) == TOP
        assert join(LEVEL, VARID) == TOP
        assert join(SID, COUNT) == TOP

    def test_top_absorbs(self):
        for kind in INT_KINDS:
            assert join(TOP, kind) == TOP
            assert join(kind, TOP) == TOP

    def test_join_associative(self):
        kinds = INT_KINDS + (None, TOP)
        for a in kinds:
            for b in kinds:
                for c in kinds:
                    assert join(join(a, b), c) == join(a, join(b, c))

    def test_arr_joins_fieldwise(self):
        assert join(Arr(NODE, EDGE), Arr(NODE, EDGE)) == Arr(NODE, EDGE)
        assert join(Arr(NODE, None), Arr(None, EDGE)) == Arr(NODE, EDGE)
        assert join(Arr(NODE, EDGE), Arr(LEVEL, EDGE)) == Arr(TOP, EDGE)
        assert join(Arr(NODE, EDGE), EDGE) == TOP

    def test_checked_kinds_exclude_bookkeeping(self):
        # count/plain legitimately mix with everything (lengths, bit
        # masks, packed keys) and must never be flagged.
        assert COUNT not in CHECKED_KINDS
        assert PLAIN not in CHECKED_KINDS
        assert CHECKED_KINDS == {EDGE, NODE, LEVEL, VARID, SID}


class TestAnnotationSeeding:
    def test_alias_names_map_to_kinds(self):
        import ast
        for name, kind in ANNOTATION_KINDS.items():
            assert annotation_kind(ast.parse(name, mode="eval").body) \
                == kind
            # Attribute and string spellings seed too.
            assert annotation_kind(
                ast.parse("types.%s" % name, mode="eval").body) == kind
            assert annotation_kind(
                ast.parse(repr(name), mode="eval").body) == kind

    def test_unrelated_annotations_do_not_seed(self):
        import ast
        for text in ("int", "str", "Optional[Edge]", "'int'"):
            assert annotation_kind(
                ast.parse(text, mode="eval").body) is None

    def test_aliases_are_runtime_noops(self):
        from repro.bdd.types import Edge, Level, NodeId, SuffixId, VarId
        for alias in (Edge, NodeId, Level, VarId, SuffixId):
            assert alias(7) == 7


# ---------------------------------------------------------------------
# Structural transfer functions
# ---------------------------------------------------------------------
class TestTransferFunctions:
    def test_shift_unpacks_edge_to_node(self, tmp_path):
        analysis = _analyze(tmp_path, '''
            from repro.bdd.types import Edge
            def unpack(f: Edge):
                return f >> 1
        ''')
        assert _fn(analysis, "unpack").ret_kind == NODE
        assert analysis.findings == []

    def test_shift_repacks_node_to_edge(self, tmp_path):
        analysis = _analyze(tmp_path, '''
            from repro.bdd.types import NodeId
            def pack(n: NodeId):
                return (n << 1) | 1
        ''')
        assert _fn(analysis, "pack").ret_kind == EDGE
        assert analysis.findings == []

    def test_xor_one_preserves_edge(self, tmp_path):
        analysis = _analyze(tmp_path, '''
            from repro.bdd.types import Edge
            def negate(f: Edge):
                return f ^ 1
        ''')
        assert _fn(analysis, "negate").ret_kind == EDGE
        assert analysis.findings == []

    def test_mask_minus_two_preserves_edge_and_bit_is_plain(
            self, tmp_path):
        analysis = _analyze(tmp_path, '''
            from repro.bdd.types import Edge
            def regular(f: Edge):
                return f & -2
            def bit(f: Edge):
                return f & 1
        ''')
        assert _fn(analysis, "regular").ret_kind == EDGE
        assert _fn(analysis, "bit").ret_kind == PLAIN
        assert analysis.findings == []

    def test_polarity_algebra_is_kind_sound(self, tmp_path):
        # The kernel's hot-loop idiom: extract a polarity bit from two
        # edges and apply it to a third.  No kind is violated anywhere.
        analysis = _analyze(tmp_path, '''
            from repro.bdd.types import Edge
            def apply_polarity(f: Edge, g: Edge, res: Edge):
                pol = (f ^ g) & 1
                return res ^ pol
        ''')
        assert _fn(analysis, "apply_polarity").ret_kind == EDGE
        assert analysis.findings == []

    def test_len_yields_count_not_node(self, tmp_path):
        # `node = len(_lev)` is the allocator idiom; a count must not
        # be mistaken for an existing node nor flagged as one.
        analysis = _analyze(tmp_path, '''
            def alloc(levels):
                return len(levels)
        ''')
        assert _fn(analysis, "alloc").ret_kind == COUNT
        assert analysis.findings == []

    def test_known_attrs_demand_and_yield(self, tmp_path):
        analysis = _analyze(tmp_path, '''
            from repro.bdd.types import Edge
            def walk(mgr, f: Edge):
                node = f >> 1
                lvl = mgr._level[node]
                var = mgr._level_to_var[lvl]
                back = mgr._var_to_level[var]
                return mgr._lo[node]
        ''')
        assert analysis.findings == []
        assert _fn(analysis, "walk").ret_kind == EDGE

    def test_annotation_pins_name_across_rebinding(self, tmp_path):
        # An AnnAssign pin survives later textual rebinding — the
        # `sid = ids.get(...)` / `sid = len(ids)` idiom in quantify.
        analysis = _analyze(tmp_path, '''
            from repro.bdd.types import Edge, SuffixId
            def intern(ids, suffix, e: Edge):
                sid: SuffixId = ids.get(suffix)
                if sid is None:
                    sid = len(ids)
                return (e << 20) | sid
        ''')
        assert analysis.findings == []


# ---------------------------------------------------------------------
# The five rules
# ---------------------------------------------------------------------
class TestSubscriptRule:
    def test_unshifted_edge_into_level_array(self, tmp_path):
        analysis = _analyze(tmp_path, '''
            from repro.bdd.types import Edge
            def bad(mgr, f: Edge):
                return mgr._level[f]
        ''')
        [(rel, line, message)] = analysis.findings_for("intkind-subscript")
        assert (rel, line) == (DEMO_REL, 4)
        assert "edge >> 1" in message

    def test_level_into_var_array(self, tmp_path):
        analysis = _analyze(tmp_path, '''
            from repro.bdd.types import Level
            def bad(mgr, lvl: Level):
                return mgr._var_to_level[lvl]
        ''')
        assert analysis.findings_for("intkind-subscript")

    def test_store_side_is_checked_too(self, tmp_path):
        analysis = _analyze(tmp_path, '''
            from repro.bdd.types import Edge
            def bad(mgr, f: Edge):
                mgr._level[f] = 0
        ''')
        assert analysis.findings_for("intkind-subscript")

    def test_shifted_subscript_is_clean(self, tmp_path):
        analysis = _analyze(tmp_path, '''
            from repro.bdd.types import Edge
            def good(mgr, f: Edge):
                return mgr._level[f >> 1]
        ''')
        assert analysis.findings == []


class TestComplementRule:
    def test_xor_one_on_node_id(self, tmp_path):
        analysis = _analyze(tmp_path, '''
            from repro.bdd.types import Edge
            def bad(f: Edge):
                node = f >> 1
                return node ^ 1
        ''')
        [(rel, line, message)] = analysis.findings_for(
            "intkind-complement")
        assert (rel, line) == (DEMO_REL, 5)
        assert "'node'" in message

    def test_xor_one_on_level(self, tmp_path):
        analysis = _analyze(tmp_path, '''
            from repro.bdd.types import Level
            def bad(lvl: Level):
                return lvl ^ 1
        ''')
        assert analysis.findings_for("intkind-complement")


class TestMixRule:
    def test_arithmetic_mix(self, tmp_path):
        analysis = _analyze(tmp_path, '''
            from repro.bdd.types import Edge, Level
            def bad(e: Edge, lvl: Level):
                return e + lvl
        ''')
        [(rel, line, message)] = analysis.findings_for("intkind-mix")
        assert (rel, line) == (DEMO_REL, 4)
        assert "'edge'" in message and "'level'" in message

    def test_comparison_mix(self, tmp_path):
        analysis = _analyze(tmp_path, '''
            from repro.bdd.types import Edge, Level
            def bad(e: Edge, lvl: Level):
                return e < lvl
        ''')
        assert analysis.findings_for("intkind-mix")

    def test_same_kind_and_constants_are_clean(self, tmp_path):
        analysis = _analyze(tmp_path, '''
            from repro.bdd.types import Level
            def good(a: Level, b: Level):
                return (a + 1) < b
        ''')
        assert analysis.findings == []


class TestCallRule:
    def test_node_passed_where_edge_annotated(self, tmp_path):
        analysis = _analyze(tmp_path, '''
            from repro.bdd.types import Edge
            def negate(f: Edge) -> Edge:
                return f ^ 1
            def bad(f: Edge):
                node = f >> 1
                return negate(node)
        ''')
        [(rel, line, message)] = analysis.findings_for("intkind-call")
        assert (rel, line) == (DEMO_REL, 7)
        assert "negate" in message and "'node'" in message

    def test_inferred_return_kind_feeds_the_check(self, tmp_path):
        # make_node has no return annotation; its NODE return kind is
        # inferred by the fixpoint and still trips the annotated
        # callee's parameter check.
        analysis = _analyze(tmp_path, '''
            from repro.bdd.types import Edge
            def negate(f: Edge) -> Edge:
                return f ^ 1
            def make_node(f: Edge):
                return f >> 1
            def bad(f: Edge):
                return negate(make_node(f))
        ''')
        assert _fn(analysis, "make_node").ret_kind == NODE
        assert analysis.findings_for("intkind-call")

    def test_method_call_skips_self(self, tmp_path):
        analysis = _analyze(tmp_path, '''
            from repro.bdd.types import Edge
            class M:
                def negate(self, f: Edge) -> Edge:
                    return f ^ 1
                def bad(self, f: Edge):
                    return self.negate(f >> 1)
                def good(self, f: Edge):
                    return self.negate(f)
        ''')
        findings = analysis.findings_for("intkind-call")
        assert len(findings) == 1
        assert findings[0][1] == 7


class TestMemoKeyRule:
    def test_edge_in_narrow_low_field(self, tmp_path):
        analysis = _analyze(tmp_path, '''
            from repro.bdd.types import Edge
            _SUFFIX_BITS = 20
            def bad(e: Edge, g: Edge):
                return (e << _SUFFIX_BITS) | g
        ''')
        [(rel, line, message)] = analysis.findings_for(
            "intkind-memo-key")
        assert (rel, line) == (DEMO_REL, 5)
        assert "20-bit" in message

    def test_full_width_and_suffix_packing_are_clean(self, tmp_path):
        # The kernel's sanctioned keys: 32-bit operand fields for
        # edges, narrow fields only for interned suffix ids.
        analysis = _analyze(tmp_path, '''
            from repro.bdd.types import Edge, SuffixId
            _SUFFIX_BITS = 20
            def ct_key(f: Edge, g: Edge):
                return (f << 32) | g
            def quant_key(e: Edge, sid: SuffixId):
                return (e << _SUFFIX_BITS) | sid
            def and_exists_key(f: Edge, g: Edge, sid: SuffixId):
                return (((f << 32) | g) << _SUFFIX_BITS) | sid
        ''')
        assert analysis.findings == []


# ---------------------------------------------------------------------
# Interprocedural fixpoint
# ---------------------------------------------------------------------
class TestFixpoint:
    def test_call_sites_infer_unannotated_params(self, tmp_path):
        # The bug lives inside an *unannotated* helper; only the
        # call-site kind propagated by the fixpoint exposes it.
        analysis = _analyze(tmp_path, '''
            from repro.bdd.types import Edge
            def helper(mgr, x):
                return mgr._level[x]
            def seed(mgr, e: Edge):
                return helper(mgr, e)
        ''')
        assert _fn(analysis, "helper").param_kinds["x"] == EDGE
        assert analysis.findings_for("intkind-subscript")

    def test_terminates_on_direct_recursion(self, tmp_path):
        analysis = _analyze(tmp_path, '''
            from repro.bdd.types import Edge
            def spin(e: Edge):
                return spin(e)
        ''')
        assert analysis.rounds <= MAX_ROUNDS
        assert analysis.findings == []

    def test_terminates_and_infers_through_mutual_recursion(
            self, tmp_path):
        analysis = _analyze(tmp_path, '''
            from repro.bdd.types import Edge
            def ping(e):
                return pong(e)
            def pong(x):
                return ping(x)
            def seed(f: Edge):
                return ping(f)
        ''')
        assert analysis.rounds <= MAX_ROUNDS
        assert _fn(analysis, "ping").param_kinds["e"] == EDGE
        assert _fn(analysis, "pong").param_kinds["x"] == EDGE

    def test_conflicting_call_sites_widen_to_top_silently(
            self, tmp_path):
        # Polymorphic helpers are legal: conflicting argument kinds
        # widen the parameter to ⊤, which satisfies every demand
        # (documented imprecision, DESIGN.md section 10).
        analysis = _analyze(tmp_path, '''
            from repro.bdd.types import Edge, Level
            def ident(x):
                return x
            def use_edge(e: Edge):
                return ident(e)
            def use_level(lvl: Level):
                return ident(lvl)
        ''')
        assert _fn(analysis, "ident").param_kinds["x"] == TOP
        assert analysis.findings == []

    def test_annotations_are_not_demoted_by_call_sites(self, tmp_path):
        # A bad call site reports a finding but must not corrupt the
        # annotated summary it disagrees with.
        analysis = _analyze(tmp_path, '''
            from repro.bdd.types import Edge
            def negate(f: Edge) -> Edge:
                return f ^ 1
            def bad(f: Edge):
                return negate(f >> 1)
        ''')
        assert _fn(analysis, "negate").param_kinds["f"] == EDGE
        assert analysis.findings_for("intkind-call")

    def test_imports_resolve_across_modules(self, tmp_path):
        # The FALSE/TRUE constants seed through a `from ... import`
        # chain, mirroring repro.decomp.context importing through the
        # repro.bdd package __init__.
        consts = textwrap.dedent('''
            from repro.bdd.types import Edge
            FALSE: Edge = 0
            TRUE: Edge = 1
        ''')
        (tmp_path / "src/repro/bdd").mkdir(parents=True)
        (tmp_path / "src/repro/bdd/consts.py").write_text(consts)
        analysis = _analyze(tmp_path, '''
            from repro.bdd.consts import FALSE
            def bad(mgr):
                return mgr._level[FALSE]
        ''')
        assert analysis.findings_for("intkind-subscript")


# ---------------------------------------------------------------------
# Scope
# ---------------------------------------------------------------------
class TestScope:
    def test_scope_predicate(self):
        assert in_intkind_scope("src/repro/bdd/manager.py")
        assert in_intkind_scope("src/repro/bdd/quantify.py")
        assert in_intkind_scope("src/repro/decomp/context.py")
        assert not in_intkind_scope("src/repro/decomp/engine.py")
        assert not in_intkind_scope("src/repro/network/extract.py")
        assert not in_intkind_scope("tools/astlint.py")

    def test_out_of_scope_files_are_not_analyzed(self, tmp_path):
        analysis = _analyze(tmp_path, '''
            from repro.bdd.types import Edge
            def bad(mgr, f: Edge):
                return mgr._level[f]
        ''', rel="src/repro/pipeline/stagex.py")
        assert analysis.findings == []
        assert analysis.functions == {}

    def test_real_tree_is_clean_and_fully_summarized(self):
        project, broken = load_project(None, REPO_ROOT)
        assert not broken
        analysis = analyze_project(project)
        assert analysis.findings == []
        # Every in-scope module produced summaries, and the memoised
        # accessor returns the same instance.
        assert "repro.bdd.manager" in analysis.modules
        assert "repro.decomp.context" in analysis.modules
        assert len(analysis.functions) > 100
        assert analyze_project(project) is analysis
        # Spot-check a fixpoint inference on the real tree: reorder's
        # swap_levels has no annotation, yet every call site passes a
        # level.
        swap = analysis.functions[
            ("src/repro/bdd/reorder.py", "swap_levels")]
        assert swap.param_kinds["level"] == LEVEL

    def test_known_attrs_cover_the_manager_arrays(self):
        assert KNOWN_ATTRS["_level"] == Arr(NODE, LEVEL)
        assert KNOWN_ATTRS["_lo"] == Arr(NODE, EDGE)
        assert KNOWN_ATTRS["_hi"] == Arr(NODE, EDGE)
        assert KNOWN_ATTRS["_var_to_level"] == Arr(VARID, LEVEL)


# ---------------------------------------------------------------------
# Hot-path scope extension (repro.network verify path)
# ---------------------------------------------------------------------
class TestNetworkHotPath:
    def test_verify_path_files_are_hot(self):
        assert _in_hot_path("src/repro/network/extract.py")
        assert _in_hot_path("src/repro/network/simulate.py")
        # ...but the rest of repro.network is not.
        assert not _in_hot_path("src/repro/network/__init__.py")

    def test_impure_import_canary_in_simulate_is_caught(self, tmp_path):
        source = (REPO_ROOT / "src" / "repro" / "network"
                  / "simulate.py").read_text()
        source += "\nimport random\n"
        target = tmp_path / "src" / "repro" / "network" / "simulate.py"
        target.parent.mkdir(parents=True)
        target.write_text(source)
        report = run_repolint(paths=[tmp_path / "src"], root=tmp_path,
                              rules=["impure-import"])
        assert [f.rule for f in report.findings] == ["impure-import"]
        assert report.findings[0].line == source.count("\n")

    def test_env_read_canary_in_extract_is_caught(self, tmp_path):
        source = (REPO_ROOT / "src" / "repro" / "network"
                  / "extract.py").read_text()
        source += ("\n\ndef _canary_env():\n"
                   "    import os\n"
                   "    return os.environ.get('REPRO_FAST')\n")
        target = tmp_path / "src" / "repro" / "network" / "extract.py"
        target.parent.mkdir(parents=True)
        target.write_text(source)
        report = run_repolint(paths=[tmp_path / "src"], root=tmp_path,
                              rules=["env-read"])
        assert [f.rule for f in report.findings] == ["env-read"]

    def test_real_verify_path_is_clean(self):
        report = run_repolint(
            paths=[REPO_ROOT / "src" / "repro" / "network"],
            root=REPO_ROOT,
            rules=["impure-import", "env-read", "id-order",
                   "cache-attr-name"])
        assert report.findings == []


# ---------------------------------------------------------------------
# Mutation canaries (the issue's acceptance bar)
# ---------------------------------------------------------------------
class TestMutationCanaries:
    def _copy_with(self, tmp_path, rel, suffix):
        source = (REPO_ROOT / rel).read_text()
        mutated = source + suffix
        target = tmp_path / rel
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(mutated)
        return source.count("\n")

    def test_selfcheck_reports_both_seeded_bugs(self, tmp_path):
        # Canary 1: un-shifted edge subscript into the flat node
        # arrays, seeded into a copy of the real manager.py.
        base_mgr = self._copy_with(
            tmp_path, "src/repro/bdd/manager.py",
            "\n\ndef _canary_level_subscript(mgr, edge: Edge):\n"
            "    return mgr._level[edge]\n")
        # Canary 2: complement flip on a raw node id, seeded into a
        # copy of the real quantify.py.
        base_qnt = self._copy_with(
            tmp_path, "src/repro/bdd/quantify.py",
            "\n\ndef _canary_complement(f: Edge):\n"
            "    node = f >> 1\n"
            "    return node ^ 1\n")
        out = io.StringIO()
        code = cli_main(["selfcheck", "--root", str(tmp_path),
                         str(tmp_path / "src"),
                         "--fail-on", "warning"], stdout=out)
        text = out.getvalue()
        assert code == 1
        assert "intkind-subscript" in text
        assert "intkind-complement" in text
        # The findings carry the exact seeded lines: the suffix adds
        # two blank lines, a def line, then the offending statements.
        assert "manager.py:%d" % (base_mgr + 4) in text
        assert "quantify.py:%d" % (base_qnt + 5) in text

    def test_canaries_survive_the_full_rule_set(self, tmp_path):
        # Same mutations through run_repolint with every rule active:
        # no other rule's noise masks the intkind findings.
        self._copy_with(
            tmp_path, "src/repro/bdd/manager.py",
            "\n\ndef _canary_level_subscript(mgr, edge: Edge):\n"
            "    return mgr._level[edge]\n")
        report = run_repolint(paths=[tmp_path / "src"], root=tmp_path)
        assert any(f.rule == "intkind-subscript"
                   for f in report.findings)

    def test_unmodified_copies_stay_clean(self, tmp_path):
        # Control: identical copies without the seeded bugs raise no
        # intkind findings, so the catches above are the mutations'
        # doing.
        for rel in ("src/repro/bdd/manager.py",
                    "src/repro/bdd/quantify.py"):
            target = tmp_path / rel
            target.parent.mkdir(parents=True, exist_ok=True)
            target.write_text((REPO_ROOT / rel).read_text())
        report = run_repolint(paths=[tmp_path / "src"], root=tmp_path,
                              rules=["intkind-subscript",
                                     "intkind-complement",
                                     "intkind-mix", "intkind-call",
                                     "intkind-memo-key"])
        assert report.findings == []
