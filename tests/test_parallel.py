"""Tests for the multi-process batch executor (repro.pipeline.parallel).

Covers the determinism contract (jobs=1 and jobs=N emit byte-identical
BLIFs and certificate traces — every input runs snapshot-isolated in a
fresh session, so dynamic scheduling cannot perturb outputs), the
pull-based work queue (hogs dispatched first, no worker idles while
the deque is non-empty, crash accounting), worker event forwarding
(``worker`` payload tags, batch lifecycle events, reserved-key
payloads that must not crash the parent pump), failure isolation (a
failing input reports an error without killing the sweep; a crashed
worker's buffered payloads are drained, not lost), component-store
sharing (worker-store merge, corrupt-store preservation, warm-rerun
rehydrated hits), the ``Pipeline.run_batch`` /
``PipelineConfig(jobs=...)`` wiring, and the sweep-wide batch-scope
wall-clock budget.
"""

import json
import os
import sys
import time

import pytest

from repro.pipeline import (Deadline, EventBus, Pipeline, PipelineConfig,
                            PipelineInput, Session)
from repro.pipeline.events import Event
from repro.pipeline.parallel import (ParallelBatchResult,
                                     ParallelPipelineRun, _WorkQueue,
                                     run_batch_parallel,
                                     worker_store_path)
from repro.pipeline.pipeline import (stage_build_isfs, stage_decompose,
                                     stage_emit, stage_parse,
                                     stage_preprocess, stage_verify)

PLA_A = """\
.i 4
.o 2
.ilb a b c d
.ob f g
.type fd
.p 5
11-- 10
--11 11
00-- 01
1--1 -0
0-0- 01
.e
"""

PLA_B = """\
.i 4
.o 1
.ilb a b x y
.ob f
.type fd
.p 3
11-- 1
--11 1
0-0- 0
.e
"""

PLA_C = """\
.i 3
.o 1
.ilb p q r
.ob s
.type fd
.p 4
11- 1
--1 1
000 0
010 0
.e
"""

PLA_D = """\
.i 5
.o 1
.ilb a b c d e
.ob t
.type fd
.p 6
11--- 1
--11- 1
---11 1
00000 0
0-0-0 0
-0-0- 0
.e
"""

TEXTS = [PLA_A, PLA_B, PLA_C, PLA_D]


def make_inputs():
    return [PipelineInput(text=text, label="in%d" % i)
            for i, text in enumerate(TEXTS)]


def blifs(runs):
    return [run.blif for run in runs]


def _boom_preprocess(session, run, record):
    if run.label == "boom":
        raise RuntimeError("injected stage failure")
    stage_preprocess(session, run, record)


#: A standard pipeline whose preprocess stage raises for label "boom".
#: Module-level so worker processes can resolve it.
FAILING_PIPELINE = Pipeline([("parse", stage_parse),
                             ("build_isfs", stage_build_isfs),
                             ("preprocess", _boom_preprocess),
                             ("decompose", stage_decompose),
                             ("verify", stage_verify),
                             ("emit", stage_emit)])


def _custom_pipeline(preprocess):
    return Pipeline([("parse", stage_parse),
                     ("build_isfs", stage_build_isfs),
                     ("preprocess", preprocess),
                     ("decompose", stage_decompose),
                     ("verify", stage_verify),
                     ("emit", stage_emit)])


def _hostile_preprocess(session, run, record):
    """Forward an event whose payload carries keys that collide with
    ``EventBus.publish``'s own parameters — the parent pump must
    republish it without a TypeError."""
    if run.label == "in0":
        session.events.republish(Event("hostile_event",
                                       {"name": "evil", "self": "boom",
                                        "worker": "forged"}))
    stage_preprocess(session, run, record)


HOSTILE_PIPELINE = _custom_pipeline(_hostile_preprocess)

#: Events the crashing worker buffers on the channel before dying.
FLOOD_EVENTS = 300


def _flooding_preprocess(session, run, record):
    """Flood the result channel, then die without a ``done`` message.

    ``sys.exit`` (not an ``Exception``) escapes the worker loop, so
    the process exits mid-sweep with its flood buffered — the parent's
    straggler drain must still collect every message.
    """
    if run.label == "crash":
        for tick in range(FLOOD_EVENTS):
            session.events.publish("decompose_progress", tick=tick)
        sys.exit(3)
    stage_preprocess(session, run, record)


FLOODING_PIPELINE = _custom_pipeline(_flooding_preprocess)

#: Sleeps for the mixed-workload stress test: the hog's runtime is a
#: large multiple of everything else so scheduling assertions hold on
#: slow CI boxes too.
HOG_SLEEP = 1.2
SMALL_SLEEP = 0.01


def _sleepy_preprocess(session, run, record):
    time.sleep(HOG_SLEEP if run.label == "hog" else SMALL_SLEEP)
    stage_preprocess(session, run, record)


SLEEPY_PIPELINE = _custom_pipeline(_sleepy_preprocess)


# ---------------------------------------------------------------------
# Determinism: jobs must not change the emitted BLIFs
# ---------------------------------------------------------------------
class TestDeterminism:
    def test_parallel_matches_serial_byte_for_byte(self):
        serial = run_batch_parallel(make_inputs(), jobs=1)
        for jobs in (2, 3):
            parallel = run_batch_parallel(make_inputs(), jobs=jobs)
            assert blifs(parallel) == blifs(serial)
            assert [run.label for run in parallel] \
                == [run.label for run in serial]

    def test_results_come_back_in_input_order(self):
        result = run_batch_parallel(make_inputs(), jobs=2)
        assert [run.label for run in result] \
            == ["in0", "in1", "in2", "in3"]
        assert all(isinstance(run, ParallelPipelineRun) for run in result)

    def test_gate_counts_match_serial_session(self):
        session = Session()
        classic = Pipeline.standard().run(
            session, PipelineInput(text=PLA_A, label="in0"))
        result = run_batch_parallel(
            [PipelineInput(text=PLA_A, label="in0")], jobs=2)
        assert result[0].blif == classic.blif
        assert result[0].netlist_stats().gates \
            == classic.netlist_stats().gates


# ---------------------------------------------------------------------
# Work queue
# ---------------------------------------------------------------------
def make_descs(cube_counts):
    return [{"path": None, "label": "d%d" % i, "emit_path": None,
             "text": "\n".join([".i 2", ".o 1", ".type fd"]
                               + ["1- 1"] * n + [".e"]) + "\n"}
            for i, n in enumerate(cube_counts)]


class TestWorkQueue:
    def test_hogs_dispatched_first(self):
        work = _WorkQueue(make_descs([1, 5, 2, 4]))
        # Descending cube count: 5, 4, 2, 1 cubes.
        assert work.order == [1, 3, 2, 0]
        dispatched = []
        while True:
            task = work.next_for(0)
            if task is None:
                break
            dispatched.append(task[0])
            work.task_done(0, task[0])
        assert dispatched == [1, 3, 2, 0]

    def test_never_idles_while_nonempty(self):
        # Whichever worker asks — in any interleaving — gets a task as
        # long as the deque is non-empty: the no-idle property.
        work = _WorkQueue(make_descs([3, 1, 2, 5, 4]))
        served = []
        for worker_id in (2, 0, 1, 0, 2, 1):
            remaining = len(work)
            task = work.next_for(worker_id)
            if remaining:
                assert task is not None
                served.append(task[0])
                work.task_done(worker_id, task[0])
            else:
                assert task is None
        assert sorted(served) == [0, 1, 2, 3, 4]

    def test_assignment_tracking_for_crash_accounting(self):
        work = _WorkQueue(make_descs([2, 1]))
        index, _desc = work.next_for(7)
        assert work.lost_input(7) == index
        work.task_done(7, index)
        assert work.lost_input(7) is None
        # A stale done report for a task the worker no longer holds
        # must not clobber a newer assignment.
        second, _desc = work.next_for(7)
        work.task_done(7, index)
        assert work.lost_input(7) == second

    def test_ties_broken_by_input_order(self):
        work = _WorkQueue(make_descs([2, 2, 2]))
        assert work.order == [0, 1, 2]

    def test_unparsable_text_gets_zero_weight_not_error(self):
        descs = [{"path": None, "text": "not a pla", "label": "bad",
                  "emit_path": None},
                 {"path": None, "text": PLA_A, "label": "good",
                  "emit_path": None}]
        work = _WorkQueue(descs)
        # The parsable input outweighs the zero-weight bad one.
        assert work.order == [1, 0]


# ---------------------------------------------------------------------
# Events
# ---------------------------------------------------------------------
class TestEvents:
    def test_worker_tags_and_batch_lifecycle(self):
        events = EventBus()
        run_batch_parallel(make_inputs(), jobs=2, events=events)
        started = events.named("batch_started")
        finished = events.named("batch_finished")
        assert started and started[0]["inputs"] == 4
        assert started[0]["jobs"] == 2
        assert sorted(started[0]["queue"]) == [0, 1, 2, 3]
        assigned = events.named("task_assigned")
        assert sorted(p["index"] for p in assigned) == [0, 1, 2, 3]
        assert finished and finished[0]["failures"] == 0
        batch_level = {"batch_started", "batch_finished",
                       "component_cache_merged", "worker_failed"}
        workers = set()
        for event in events.history:
            if event.name in batch_level:
                continue
            assert "worker" in event.payload, event.name
            workers.add(event.payload["worker"])
        assert workers == {0, 1}

    def test_stage_events_forwarded_per_input(self):
        events = EventBus()
        run_batch_parallel(make_inputs(), jobs=2, events=events)
        finished = events.named("stage_finished")
        emits = [p for p in finished if p["stage"] == "emit"]
        assert len(emits) == 4


# ---------------------------------------------------------------------
# Failure isolation
# ---------------------------------------------------------------------
class TestFailureIsolation:
    def inputs(self):
        return [PipelineInput(text=PLA_A, label="in0"),
                PipelineInput(text=PLA_B, label="boom"),
                PipelineInput(text=PLA_C, label="in2")]

    def test_failing_input_reports_error_others_succeed(self):
        events = EventBus()
        result = run_batch_parallel(self.inputs(), jobs=2,
                                    events=events,
                                    pipeline=FAILING_PIPELINE)
        assert [run.label for run in result] == ["in0", "boom", "in2"]
        boom = result[1]
        assert boom.failed
        assert boom.error["type"] == "RuntimeError"
        assert "injected" in boom.error["message"]
        assert boom.blif is None
        assert not result[0].failed and result[0].blif
        assert not result[2].failed and result[2].blif
        assert result.failures == [boom]
        failed = events.named("stage_failed")
        assert failed and failed[0]["stage"] == "preprocess"
        assert failed[0]["worker"] in (0, 1)
        finished = events.named("batch_finished")
        assert finished[0]["failures"] == 1

    def test_failed_run_raises_on_netlist_stats(self):
        result = run_batch_parallel(self.inputs(), jobs=2,
                                    pipeline=FAILING_PIPELINE)
        with pytest.raises(ValueError, match="injected"):
            result[1].netlist_stats()

    def test_failure_surfaces_in_stats_json(self):
        result = run_batch_parallel(self.inputs(), jobs=1,
                                    pipeline=FAILING_PIPELINE)
        doc = result.report()
        assert doc["failures"] == 1
        errors = [run["error"] for run in doc["runs"] if "error" in run]
        assert errors == [{"type": "RuntimeError",
                           "message": "injected stage failure"}]
        json.dumps(doc)  # the whole report is JSON-serializable


# ---------------------------------------------------------------------
# Hostile event payloads (reserved-key collision)
# ---------------------------------------------------------------------
class TestHostilePayloads:
    def check(self, jobs):
        events = EventBus()
        result = run_batch_parallel(make_inputs(), jobs=jobs,
                                    events=events,
                                    pipeline=HOSTILE_PIPELINE)
        # The pump survived and the sweep completed.
        assert not result.failures
        hostile = events.named("hostile_event")
        assert len(hostile) == 1
        payload = hostile[0]
        # Keys colliding with publish()'s own parameters arrive intact.
        assert payload["name"] == "evil"
        assert payload["self"] == "boom"
        # ...except the worker tag, which the parent always overwrites
        # with the id of the worker the event actually came from.
        assert isinstance(payload["worker"], int)
        assert payload["worker"] != "forged"

    def test_parent_pump_survives_reserved_keys(self):
        self.check(jobs=2)

    def test_inline_path_survives_reserved_keys(self):
        self.check(jobs=1)


# ---------------------------------------------------------------------
# Straggler drain (crashed worker's buffered messages)
# ---------------------------------------------------------------------
class TestStragglerDrain:
    def test_flooded_channel_is_drained_after_worker_death(self):
        # The crash input has the most cubes, so the work queue hands
        # it out first; its worker floods the channel and exits without
        # a "done" message while the other worker runs the small
        # inputs.  Every buffered message must still reach the parent.
        sources = [PipelineInput(text=PLA_D, label="crash"),
                   PipelineInput(text=PLA_B, label="ok1"),
                   PipelineInput(text=PLA_C, label="ok2")]
        events = EventBus()
        result = run_batch_parallel(sources, jobs=2, events=events,
                                    pipeline=FLOODING_PIPELINE)
        assert [run.label for run in result] == ["crash", "ok1", "ok2"]
        # The survivors' run payloads were collected, not lost.
        assert not result[1].failed and result[1].blif
        assert not result[2].failed and result[2].blif
        # Only the input the dead worker was actually holding failed.
        assert result[0].failed
        assert "worker process died" in result[0].error["message"]
        # The flood the worker buffered before dying arrived complete.
        ticks = [p["tick"] for p in events.named("decompose_progress")
                 if "tick" in p.payload]
        assert sorted(ticks) == list(range(FLOOD_EVENTS))
        failed = events.named("worker_failed")
        assert len(failed) == 1
        assert failed[0]["exitcode"] == 3
        assert failed[0]["lost_inputs"] == [0]


# ---------------------------------------------------------------------
# Component-store sharing
# ---------------------------------------------------------------------
class TestStoreSharing:
    def config(self, tmp_path, **kwargs):
        return PipelineConfig(
            cache_path=str(tmp_path / "batch.cache.json"), **kwargs)

    def test_cold_sweep_merges_worker_stores(self, tmp_path):
        events = EventBus()
        config = self.config(tmp_path)
        result = run_batch_parallel(make_inputs(), config=config,
                                    jobs=2, events=events)
        assert result.merged_store == config.cache_path
        assert result.merged_entries > 0
        assert os.path.exists(config.cache_path)
        merged = events.named("component_cache_merged")
        assert merged and merged[0]["entries"] == result.merged_entries
        # Private worker files are cleaned up after the merge.
        for worker_id in range(2):
            assert not os.path.exists(
                worker_store_path(config.cache_path, worker_id))

    def test_warm_rerun_rehydrates_from_merged_store(self, tmp_path):
        config = self.config(tmp_path)
        cold = run_batch_parallel(make_inputs(), config=config, jobs=2)
        warm = run_batch_parallel(make_inputs(), config=config, jobs=2)
        assert cold.report()["rehydrated_hits"] == 0
        assert warm.report()["rehydrated_hits"] > 0

    def test_warm_determinism_across_jobs(self, tmp_path):
        config = self.config(tmp_path)
        run_batch_parallel(make_inputs(), config=config, jobs=2)
        snapshot = open(config.cache_path).read()
        readonly = self.config(tmp_path, cache_readonly=True)
        warm2 = run_batch_parallel(make_inputs(), config=readonly, jobs=2)
        warm3 = run_batch_parallel(make_inputs(), config=readonly, jobs=3)
        assert blifs(warm2) == blifs(warm3)
        # Readonly sweeps never touch the store.
        assert open(config.cache_path).read() == snapshot
        assert warm2.merged_store is None

    def test_inline_path_shares_store_too(self, tmp_path):
        config = self.config(tmp_path)
        run_batch_parallel(make_inputs(), config=config, jobs=1)
        warm = run_batch_parallel(make_inputs(), config=config, jobs=1)
        assert warm.report()["rehydrated_hits"] > 0

    def test_corrupt_presweep_store_preserved_not_destroyed(self, tmp_path):
        from repro.decomp.cache_store import load_store
        config = self.config(tmp_path)
        garbage = "NOT JSON {{{"
        with open(config.cache_path, "w") as handle:
            handle.write(garbage)
        events = EventBus()
        result = run_batch_parallel(make_inputs(), config=config,
                                    jobs=2, events=events)
        assert not result.failures
        # The unreadable original was renamed aside, bytes intact, not
        # silently overwritten by the workers' entries.
        preserved = config.cache_path + ".corrupt"
        assert open(preserved).read() == garbage
        fails = events.named("component_cache_load_failed")
        assert any(p.get("preserved") == preserved
                   and p.get("path") == config.cache_path
                   for p in fails)
        # The merge still went through: the store was rebuilt from the
        # live workers' components and is readable again.
        assert result.merged_store == config.cache_path
        assert result.merged_entries > 0
        entries, skipped = load_store(config.cache_path)
        assert len(entries) == result.merged_entries
        assert skipped == 0


# ---------------------------------------------------------------------
# Mixed-workload stress: one hog + many small inputs
# ---------------------------------------------------------------------
class TestMixedWorkloadStress:
    def test_hog_never_blocks_the_queue(self):
        # The hog has the most cubes, so it is dispatched first — and
        # then sleeps for longer than every small input combined.
        sources = [PipelineInput(text=PLA_D, label="hog")] \
            + [PipelineInput(text=(PLA_B if i % 2 else PLA_C),
                             label="small%d" % i) for i in range(6)]
        events = EventBus()
        result = run_batch_parallel(sources, jobs=2, events=events,
                                    pipeline=SLEEPY_PIPELINE)
        assert len(result) == 7
        assert not result.failures
        assigned = events.named("task_assigned")
        assert len(assigned) == 7
        assert assigned[0]["index"] == 0  # the hog goes out first
        hog_worker = assigned[0]["worker"]
        # While the hog holds its worker, every later assignment flows
        # to the free worker: nothing queues up behind the hog and no
        # worker idles while the deque is non-empty.  (Static
        # partitioning would strand some small inputs behind the hog.)
        others = {p["worker"] for p in assigned[1:]}
        assert others == {1 - hog_worker}

    def test_jobs1_vs_jobs4_blif_and_cert_bytes_identical(self, tmp_path):
        def sweep(jobs):
            outdir = tmp_path / ("jobs%d" % jobs)
            outdir.mkdir()
            sources = [
                PipelineInput(text=text, label="in%d" % i,
                              emit_path=str(outdir / ("in%d.blif" % i)))
                for i, text in enumerate(TEXTS)]
            config = PipelineConfig(emit_certificates=True)
            result = run_batch_parallel(sources, config=config,
                                        jobs=jobs)
            assert not result.failures
            return {path.name: path.read_bytes()
                    for path in sorted(outdir.iterdir())}
        serial, parallel = sweep(1), sweep(4)
        # Four BLIFs and four certificate traces per sweep, all
        # byte-identical under dynamic scheduling.
        assert len(serial) == 8
        assert any(name.endswith(".cert.json") for name in serial)
        assert parallel == serial


# ---------------------------------------------------------------------
# run_batch / config wiring
# ---------------------------------------------------------------------
class TestRunBatchWiring:
    def test_run_batch_jobs_dispatches_to_parallel(self):
        session = Session()
        result = Pipeline.standard().run_batch(session, make_inputs(),
                                               jobs=2)
        assert isinstance(result, ParallelBatchResult)
        assert result.jobs == 2
        # Worker events land on the session's own bus.
        assert session.events.named("batch_finished")

    def test_config_jobs_is_the_default(self):
        session = Session(PipelineConfig(jobs=2))
        result = Pipeline.standard().run_batch(session, make_inputs())
        assert isinstance(result, ParallelBatchResult)

    def test_serial_run_batch_unchanged(self):
        session = Session()
        runs = Pipeline.standard().run_batch(session, make_inputs())
        assert not isinstance(runs, ParallelBatchResult)
        assert len(runs) == 4

    def test_live_inputs_are_rejected(self):
        from repro.io import parse_pla
        pla = parse_pla(PLA_A)
        with pytest.raises(ValueError, match="process boundary"):
            run_batch_parallel([PipelineInput(pla=pla)], jobs=2)

    def test_negative_jobs_rejected_by_config(self):
        with pytest.raises(ValueError, match="jobs"):
            PipelineConfig(jobs=-1)

    def test_report_includes_batch_metadata(self):
        config = PipelineConfig(jobs=2)
        result = run_batch_parallel(make_inputs(), config=config)
        doc = result.report(config)
        assert doc["inputs"] == 4
        assert doc["jobs"] == 2
        assert doc["failures"] == 0
        assert doc["config"]["jobs"] == 2
        assert len(doc["runs"]) == 4
        assert {run["worker"] for run in doc["runs"]} == {0, 1}
        json.dumps(doc)


# ---------------------------------------------------------------------
# Batch-scope wall clock
# ---------------------------------------------------------------------
class TestBudgetScope:
    def test_bogus_scope_rejected(self):
        with pytest.raises(ValueError, match="budget_scope"):
            PipelineConfig(budget_scope="sweep")

    def test_run_scope_restarts_clock_each_run(self):
        session = Session(PipelineConfig(time_limit=60.0))
        session.start_clock()
        first = session._deadline
        session.start_clock()
        assert session._deadline is not first

    def test_batch_scope_keeps_running_clock(self):
        session = Session(PipelineConfig(time_limit=60.0,
                                         budget_scope="batch"))
        session.start_clock()
        first = session._deadline
        session.start_clock()
        assert session._deadline is first
        session.start_clock(restart=True)
        assert session._deadline is not first

    def test_adopted_deadline_survives_batch_scope_runs(self):
        session = Session(PipelineConfig(time_limit=60.0,
                                         budget_scope="batch"))
        shared = Deadline(60.0)
        session.adopt_deadline(shared)
        session.start_clock()
        assert session._deadline is shared

    def test_batch_scope_spans_parallel_partition(self):
        # A batch budget far too small for even one decomposition must
        # fail every input in the partition, not one per time_limit.
        config = PipelineConfig(time_limit=1e-9, budget_scope="batch")
        result = run_batch_parallel(make_inputs(), config=config, jobs=1)
        assert len(result.failures) == len(result)
        assert all(run.error["type"] == "PipelineTimeout"
                   for run in result)
