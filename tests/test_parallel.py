"""Tests for the multi-process batch executor (repro.pipeline.parallel).

Covers the determinism contract (jobs=1 and jobs=N emit byte-identical
BLIFs — every input runs snapshot-isolated in a fresh session), LPT
partitioning, worker event forwarding (``worker`` payload tags, batch
lifecycle events), failure isolation (a failing input reports an error
without killing its partition), component-store sharing (worker-store
merge, warm-rerun rehydrated hits), the ``Pipeline.run_batch`` /
``PipelineConfig(jobs=...)`` wiring, and the batch-scope wall-clock
budget.
"""

import json
import os

import pytest

from repro.pipeline import (Deadline, EventBus, Pipeline, PipelineConfig,
                            PipelineInput, Session)
from repro.pipeline.parallel import (ParallelBatchResult,
                                     ParallelPipelineRun, _partition,
                                     run_batch_parallel,
                                     worker_store_path)
from repro.pipeline.pipeline import (stage_build_isfs, stage_decompose,
                                     stage_emit, stage_parse,
                                     stage_preprocess, stage_verify)

PLA_A = """\
.i 4
.o 2
.ilb a b c d
.ob f g
.type fd
.p 5
11-- 10
--11 11
00-- 01
1--1 -0
0-0- 01
.e
"""

PLA_B = """\
.i 4
.o 1
.ilb a b x y
.ob f
.type fd
.p 3
11-- 1
--11 1
0-0- 0
.e
"""

PLA_C = """\
.i 3
.o 1
.ilb p q r
.ob s
.type fd
.p 4
11- 1
--1 1
000 0
010 0
.e
"""

PLA_D = """\
.i 5
.o 1
.ilb a b c d e
.ob t
.type fd
.p 6
11--- 1
--11- 1
---11 1
00000 0
0-0-0 0
-0-0- 0
.e
"""

TEXTS = [PLA_A, PLA_B, PLA_C, PLA_D]


def make_inputs():
    return [PipelineInput(text=text, label="in%d" % i)
            for i, text in enumerate(TEXTS)]


def blifs(runs):
    return [run.blif for run in runs]


def _boom_preprocess(session, run, record):
    if run.label == "boom":
        raise RuntimeError("injected stage failure")
    stage_preprocess(session, run, record)


#: A standard pipeline whose preprocess stage raises for label "boom".
#: Module-level so worker processes can resolve it.
FAILING_PIPELINE = Pipeline([("parse", stage_parse),
                             ("build_isfs", stage_build_isfs),
                             ("preprocess", _boom_preprocess),
                             ("decompose", stage_decompose),
                             ("verify", stage_verify),
                             ("emit", stage_emit)])


# ---------------------------------------------------------------------
# Determinism: jobs must not change the emitted BLIFs
# ---------------------------------------------------------------------
class TestDeterminism:
    def test_parallel_matches_serial_byte_for_byte(self):
        serial = run_batch_parallel(make_inputs(), jobs=1)
        for jobs in (2, 3):
            parallel = run_batch_parallel(make_inputs(), jobs=jobs)
            assert blifs(parallel) == blifs(serial)
            assert [run.label for run in parallel] \
                == [run.label for run in serial]

    def test_results_come_back_in_input_order(self):
        result = run_batch_parallel(make_inputs(), jobs=2)
        assert [run.label for run in result] \
            == ["in0", "in1", "in2", "in3"]
        assert all(isinstance(run, ParallelPipelineRun) for run in result)

    def test_gate_counts_match_serial_session(self):
        session = Session()
        classic = Pipeline.standard().run(
            session, PipelineInput(text=PLA_A, label="in0"))
        result = run_batch_parallel(
            [PipelineInput(text=PLA_A, label="in0")], jobs=2)
        assert result[0].blif == classic.blif
        assert result[0].netlist_stats().gates \
            == classic.netlist_stats().gates


# ---------------------------------------------------------------------
# Partitioning
# ---------------------------------------------------------------------
class TestPartition:
    def test_hogs_scheduled_first_lpt(self):
        descs = [{"path": None, "label": "d%d" % i, "emit_path": None,
                  "text": "\n".join([".i 2", ".o 1", ".type fd"]
                                    + ["1- 1"] * n + [".e"]) + "\n"}
                 for i, n in enumerate([1, 5, 2, 4])]
        parts = _partition(descs, 2)
        assert len(parts) == 2
        # Heaviest input (index 1, 5 cubes) leads the first bucket;
        # next heaviest (index 3, 4 cubes) leads the second.
        assert parts[0][0][0] == 1
        assert parts[1][0][0] == 3
        # Every input is assigned exactly once.
        assigned = sorted(i for bucket in parts for i, _d in bucket)
        assert assigned == [0, 1, 2, 3]

    def test_more_jobs_than_inputs_drops_empty_buckets(self):
        descs = [{"path": None, "text": PLA_A, "label": "x",
                  "emit_path": None}]
        parts = _partition(descs, 8)
        assert len(parts) == 1

    def test_unparsable_text_gets_zero_weight_not_error(self):
        descs = [{"path": None, "text": "not a pla", "label": "bad",
                  "emit_path": None},
                 {"path": None, "text": PLA_A, "label": "good",
                  "emit_path": None}]
        parts = _partition(descs, 2)
        assigned = sorted(i for bucket in parts for i, _d in bucket)
        assert assigned == [0, 1]


# ---------------------------------------------------------------------
# Events
# ---------------------------------------------------------------------
class TestEvents:
    def test_worker_tags_and_batch_lifecycle(self):
        events = EventBus()
        run_batch_parallel(make_inputs(), jobs=2, events=events)
        started = events.named("batch_started")
        finished = events.named("batch_finished")
        assert started and started[0]["inputs"] == 4
        assert started[0]["jobs"] == 2
        assert sorted(i for part in started[0]["schedule"]
                      for i in part) == [0, 1, 2, 3]
        assert finished and finished[0]["failures"] == 0
        batch_level = {"batch_started", "batch_finished",
                       "component_cache_merged", "worker_failed"}
        workers = set()
        for event in events.history:
            if event.name in batch_level:
                continue
            assert "worker" in event.payload, event.name
            workers.add(event.payload["worker"])
        assert workers == {0, 1}

    def test_stage_events_forwarded_per_input(self):
        events = EventBus()
        run_batch_parallel(make_inputs(), jobs=2, events=events)
        finished = events.named("stage_finished")
        emits = [p for p in finished if p["stage"] == "emit"]
        assert len(emits) == 4


# ---------------------------------------------------------------------
# Failure isolation
# ---------------------------------------------------------------------
class TestFailureIsolation:
    def inputs(self):
        return [PipelineInput(text=PLA_A, label="in0"),
                PipelineInput(text=PLA_B, label="boom"),
                PipelineInput(text=PLA_C, label="in2")]

    def test_failing_input_reports_error_others_succeed(self):
        events = EventBus()
        result = run_batch_parallel(self.inputs(), jobs=2,
                                    events=events,
                                    pipeline=FAILING_PIPELINE)
        assert [run.label for run in result] == ["in0", "boom", "in2"]
        boom = result[1]
        assert boom.failed
        assert boom.error["type"] == "RuntimeError"
        assert "injected" in boom.error["message"]
        assert boom.blif is None
        assert not result[0].failed and result[0].blif
        assert not result[2].failed and result[2].blif
        assert result.failures == [boom]
        failed = events.named("stage_failed")
        assert failed and failed[0]["stage"] == "preprocess"
        assert failed[0]["worker"] in (0, 1)
        finished = events.named("batch_finished")
        assert finished[0]["failures"] == 1

    def test_failed_run_raises_on_netlist_stats(self):
        result = run_batch_parallel(self.inputs(), jobs=2,
                                    pipeline=FAILING_PIPELINE)
        with pytest.raises(ValueError, match="injected"):
            result[1].netlist_stats()

    def test_failure_surfaces_in_stats_json(self):
        result = run_batch_parallel(self.inputs(), jobs=1,
                                    pipeline=FAILING_PIPELINE)
        doc = result.report()
        assert doc["failures"] == 1
        errors = [run["error"] for run in doc["runs"] if "error" in run]
        assert errors == [{"type": "RuntimeError",
                           "message": "injected stage failure"}]
        json.dumps(doc)  # the whole report is JSON-serializable


# ---------------------------------------------------------------------
# Component-store sharing
# ---------------------------------------------------------------------
class TestStoreSharing:
    def config(self, tmp_path, **kwargs):
        return PipelineConfig(
            cache_path=str(tmp_path / "batch.cache.json"), **kwargs)

    def test_cold_sweep_merges_worker_stores(self, tmp_path):
        events = EventBus()
        config = self.config(tmp_path)
        result = run_batch_parallel(make_inputs(), config=config,
                                    jobs=2, events=events)
        assert result.merged_store == config.cache_path
        assert result.merged_entries > 0
        assert os.path.exists(config.cache_path)
        merged = events.named("component_cache_merged")
        assert merged and merged[0]["entries"] == result.merged_entries
        # Private worker files are cleaned up after the merge.
        for worker_id in range(2):
            assert not os.path.exists(
                worker_store_path(config.cache_path, worker_id))

    def test_warm_rerun_rehydrates_from_merged_store(self, tmp_path):
        config = self.config(tmp_path)
        cold = run_batch_parallel(make_inputs(), config=config, jobs=2)
        warm = run_batch_parallel(make_inputs(), config=config, jobs=2)
        assert cold.report()["rehydrated_hits"] == 0
        assert warm.report()["rehydrated_hits"] > 0

    def test_warm_determinism_across_jobs(self, tmp_path):
        config = self.config(tmp_path)
        run_batch_parallel(make_inputs(), config=config, jobs=2)
        snapshot = open(config.cache_path).read()
        readonly = self.config(tmp_path, cache_readonly=True)
        warm2 = run_batch_parallel(make_inputs(), config=readonly, jobs=2)
        warm3 = run_batch_parallel(make_inputs(), config=readonly, jobs=3)
        assert blifs(warm2) == blifs(warm3)
        # Readonly sweeps never touch the store.
        assert open(config.cache_path).read() == snapshot
        assert warm2.merged_store is None

    def test_inline_path_shares_store_too(self, tmp_path):
        config = self.config(tmp_path)
        run_batch_parallel(make_inputs(), config=config, jobs=1)
        warm = run_batch_parallel(make_inputs(), config=config, jobs=1)
        assert warm.report()["rehydrated_hits"] > 0


# ---------------------------------------------------------------------
# run_batch / config wiring
# ---------------------------------------------------------------------
class TestRunBatchWiring:
    def test_run_batch_jobs_dispatches_to_parallel(self):
        session = Session()
        result = Pipeline.standard().run_batch(session, make_inputs(),
                                               jobs=2)
        assert isinstance(result, ParallelBatchResult)
        assert result.jobs == 2
        # Worker events land on the session's own bus.
        assert session.events.named("batch_finished")

    def test_config_jobs_is_the_default(self):
        session = Session(PipelineConfig(jobs=2))
        result = Pipeline.standard().run_batch(session, make_inputs())
        assert isinstance(result, ParallelBatchResult)

    def test_serial_run_batch_unchanged(self):
        session = Session()
        runs = Pipeline.standard().run_batch(session, make_inputs())
        assert not isinstance(runs, ParallelBatchResult)
        assert len(runs) == 4

    def test_live_inputs_are_rejected(self):
        from repro.io import parse_pla
        pla = parse_pla(PLA_A)
        with pytest.raises(ValueError, match="process boundary"):
            run_batch_parallel([PipelineInput(pla=pla)], jobs=2)

    def test_negative_jobs_rejected_by_config(self):
        with pytest.raises(ValueError, match="jobs"):
            PipelineConfig(jobs=-1)

    def test_report_includes_batch_metadata(self):
        config = PipelineConfig(jobs=2)
        result = run_batch_parallel(make_inputs(), config=config)
        doc = result.report(config)
        assert doc["inputs"] == 4
        assert doc["jobs"] == 2
        assert doc["failures"] == 0
        assert doc["config"]["jobs"] == 2
        assert len(doc["runs"]) == 4
        assert {run["worker"] for run in doc["runs"]} == {0, 1}
        json.dumps(doc)


# ---------------------------------------------------------------------
# Batch-scope wall clock
# ---------------------------------------------------------------------
class TestBudgetScope:
    def test_bogus_scope_rejected(self):
        with pytest.raises(ValueError, match="budget_scope"):
            PipelineConfig(budget_scope="sweep")

    def test_run_scope_restarts_clock_each_run(self):
        session = Session(PipelineConfig(time_limit=60.0))
        session.start_clock()
        first = session._deadline
        session.start_clock()
        assert session._deadline is not first

    def test_batch_scope_keeps_running_clock(self):
        session = Session(PipelineConfig(time_limit=60.0,
                                         budget_scope="batch"))
        session.start_clock()
        first = session._deadline
        session.start_clock()
        assert session._deadline is first
        session.start_clock(restart=True)
        assert session._deadline is not first

    def test_adopted_deadline_survives_batch_scope_runs(self):
        session = Session(PipelineConfig(time_limit=60.0,
                                         budget_scope="batch"))
        shared = Deadline(60.0)
        session.adopt_deadline(shared)
        session.start_clock()
        assert session._deadline is shared

    def test_batch_scope_spans_parallel_partition(self):
        # A batch budget far too small for even one decomposition must
        # fail every input in the partition, not one per time_limit.
        config = PipelineConfig(time_limit=1e-9, budget_scope="batch")
        result = run_batch_parallel(make_inputs(), config=config, jobs=1)
        assert len(result.failures) == len(result)
        assert all(run.error["type"] == "PipelineTimeout"
                   for run in result)
