"""Tests for weak-step selection and inessential-variable removal."""

from repro.bdd import BDD
from repro.boolfn import ISF, parse
from repro.decomp import (AND_GATE, OR_GATE, find_weak_grouping,
                          is_inessential, remove_inessential)


class TestWeakGrouping:
    def test_picks_single_variable(self):
        mgr = BDD(["a", "b", "c"])
        isf = ISF.from_csf(parse(mgr, "a & b | c"))
        weak = find_weak_grouping(isf, isf.structural_support())
        assert weak is not None
        gate, xa = weak
        assert gate in (OR_GATE, AND_GATE)
        assert len(xa) == 1

    def test_none_for_parity(self):
        mgr = BDD(["a", "b", "c"])
        isf = ISF.from_csf(parse(mgr, "a ^ b ^ c"))
        assert find_weak_grouping(isf, isf.structural_support()) is None

    def test_maximises_dc_gain(self):
        # F = a | (b & c & d): smoothing by "a" frees the most on-set
        # minterms for component A.
        mgr = BDD(["a", "b", "c", "d"])
        isf = ISF.from_csf(parse(mgr, "a | b & c & d"))
        weak = find_weak_grouping(isf, isf.structural_support())
        assert weak is not None
        gate, xa = weak
        best_var = next(iter(xa))
        # Verify no other single-variable weak OR step frees more.
        chosen_gain = (isf.on.sat_count()
                       - (isf.on & isf.off.exists(best_var)).sat_count())
        for v in isf.structural_support():
            gain = (isf.on.sat_count()
                    - (isf.on & isf.off.exists(v)).sat_count())
            assert chosen_gain >= gain or gate == AND_GATE

    def test_deterministic(self):
        mgr = BDD(["a", "b", "c"])
        isf = ISF.from_csf(parse(mgr, "a & b | ~a & c"))
        support = isf.structural_support()
        assert find_weak_grouping(isf, support) == \
            find_weak_grouping(isf, support)


class TestInessential:
    def test_structurally_absent_variable_is_trivially_gone(self):
        mgr = BDD(["a", "b", "c"])
        isf = ISF.from_csf(parse(mgr, "a & b"))
        assert isf.structural_support() == (0, 1)

    def test_dc_induced_inessential_variable(self):
        # on = a & b, off = ~a: variable b appears structurally but the
        # compatible function "a" ignores it.
        mgr = BDD(["a", "b"])
        isf = ISF(parse(mgr, "a & b"), parse(mgr, "~a"))
        assert is_inessential(isf, "b")
        reduced, removed = remove_inessential(isf)
        assert removed == (1,)
        assert reduced.structural_support() == (0,)
        # The smoothed interval must sit inside the original one:
        # any compatible function of the reduced ISF is compatible
        # with the original.
        f = reduced.cover()
        assert isf.is_compatible(f)

    def test_essential_variable_kept(self):
        mgr = BDD(["a", "b"])
        isf = ISF.from_csf(parse(mgr, "a & b"))
        assert not is_inessential(isf, "a")
        reduced, removed = remove_inessential(isf)
        assert removed == ()
        assert reduced == isf

    def test_cascading_removal(self):
        # With everything don't-care except one must-0 point, every
        # variable is inessential (constant 0 is compatible).
        mgr = BDD(["a", "b", "c"])
        isf = ISF(mgr.fn_false(), parse(mgr, "a & b & c"))
        reduced, removed = remove_inessential(isf)
        assert len(removed) == 3
        assert reduced.structural_support() == ()
        assert reduced.is_constant_compatible() == 0

    def test_csf_never_loses_variables(self):
        mgr = BDD(["a", "b", "c"])
        isf = ISF.from_csf(parse(mgr, "a ^ b & c"))
        _reduced, removed = remove_inessential(isf)
        assert removed == ()
