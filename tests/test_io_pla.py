"""Tests for the espresso PLA reader/writer."""

import pytest
from hypothesis import given, settings

from repro.bdd import BDD
from repro.boolfn import parse
from repro.io import PLAData, PLAError, parse_pla, read_pla, write_pla

from conftest import build_isf, isf_strategy, make_mgr


SIMPLE = """\
.i 3
.o 2
.ilb a b c
.ob f g
.type fd
.p 3
1-1 10
01- 1-
00- 01
.e
"""


class TestParsing:
    def test_header_fields(self):
        data = parse_pla(SIMPLE)
        assert data.num_inputs == 3
        assert data.num_outputs == 2
        assert data.input_names == ["a", "b", "c"]
        assert data.output_names == ["f", "g"]
        assert data.pla_type == "fd"
        assert len(data.cubes) == 3

    def test_default_names(self):
        data = parse_pla(".i 2\n.o 1\n11 1\n.e\n")
        assert data.input_names == ["x0", "x1"]
        assert data.output_names == ["y0"]

    def test_comments_and_blank_lines_ignored(self):
        text = "# header\n.i 1\n.o 1\n\n1 1  # cube\n.e\n"
        data = parse_pla(text)
        assert len(data.cubes) == 1

    def test_missing_declarations_rejected(self):
        with pytest.raises(PLAError):
            parse_pla("11 1\n")

    def test_bad_cube_width_rejected(self):
        with pytest.raises(PLAError):
            parse_pla(".i 3\n.o 1\n11 1\n.e\n")

    def test_bad_symbols_rejected(self):
        with pytest.raises(PLAError):
            parse_pla(".i 2\n.o 1\n1X 1\n.e\n")

    def test_unknown_directive_rejected(self):
        with pytest.raises(PLAError):
            parse_pla(".i 1\n.o 1\n.phase 1\n1 1\n.e\n")

    def test_unsupported_type_rejected(self):
        with pytest.raises(PLAError):
            parse_pla(".i 1\n.o 1\n.type fdr\n1 1\n.e\n")


class TestSemantics:
    def test_fd_on_and_dc(self):
        data = parse_pla(SIMPLE)
        mgr, specs = data.to_isfs()
        f = specs["f"]
        # Row 1 "1-1 10" and row 2 "01- 1-" both drive f's on-set; the
        # "-" in row 2 sits in g's column.
        assert f.on == parse(mgr, "a & c | ~a & b")
        assert f.dc.is_false()
        g = specs["g"]
        assert g.on == parse(mgr, "~a & ~b")
        assert g.dc == parse(mgr, "~a & b")

    def test_type_f_has_no_dc(self):
        text = ".i 2\n.o 1\n.type f\n1- 1\n-1 -\n.e\n"
        mgr, specs = parse_pla(text).to_isfs()
        isf = specs["y0"]
        assert isf.dc.is_false()
        assert isf.on == parse(mgr, "x0")

    def test_type_fr_explicit_offset(self):
        text = ".i 2\n.o 1\n.type fr\n11 1\n00 0\n.e\n"
        mgr, specs = parse_pla(text).to_isfs()
        isf = specs["y0"]
        assert isf.on == parse(mgr, "x0 & x1")
        assert isf.off == parse(mgr, "~x0 & ~x1")
        assert isf.dc == parse(mgr, "x0 ^ x1")

    def test_type_fr_overlap_rejected(self):
        text = ".i 1\n.o 1\n.type fr\n1 1\n- 0\n.e\n"
        with pytest.raises(PLAError):
            parse_pla(text).to_isfs()

    def test_overlapping_on_and_dc_resolves_to_dc(self):
        text = ".i 1\n.o 1\n.type fd\n1 1\n- -\n.e\n"
        mgr, specs = parse_pla(text).to_isfs()
        isf = specs["y0"]
        assert isf.on.is_false()
        assert isf.dc.is_true()

    def test_zero_output_symbol_means_nothing_in_fd(self):
        text = ".i 1\n.o 2\n.type fd\n1 10\n.e\n"
        mgr, specs = parse_pla(text).to_isfs()
        assert specs["y1"].on.is_false()
        assert specs["y1"].off.is_true()


class TestWriter:
    @settings(max_examples=25, deadline=None)
    @given(isf_strategy(3), isf_strategy(3))
    def test_roundtrip_preserves_intervals(self, pair1, pair2):
        mgr = make_mgr(3)
        specs = {
            "u": build_isf(mgr, [0, 1, 2], *pair1),
            "v": build_isf(mgr, [0, 1, 2], *pair2),
        }
        text = write_pla(specs, ["x0", "x1", "x2"])
        _mgr2, specs2 = parse_pla(text).to_isfs(mgr=mgr)
        assert specs2["u"] == specs["u"]
        assert specs2["v"] == specs["v"]

    def test_writer_emits_fd_format(self):
        mgr = BDD(["a", "b"])
        specs = {"y": build_isf(mgr, [0, 1], 0b1000, 0b0011)}
        text = write_pla(specs, ["a", "b"])
        assert ".type fd" in text
        assert ".ilb a b" in text
        assert text.rstrip().endswith(".e")
        # .p must match the number of cube lines.
        lines = [line for line in text.splitlines()
                 if line and not line.startswith(".")]
        count = int([l for l in text.splitlines()
                     if l.startswith(".p")][0].split()[1])
        assert len(lines) == count

    def test_shared_writer_is_compatible_and_compact(self):
        mgr = BDD(["a", "b", "c", "d"])
        from repro.boolfn import ISF
        f = parse(mgr, "a & b | c")
        g = parse(mgr, "a & b | d")
        specs = {"f": ISF.from_csf(f), "g": ISF.from_csf(g)}
        plain = write_pla(specs, ["a", "b", "c", "d"])
        shared = write_pla(specs, ["a", "b", "c", "d"], shared=True)

        def rows(text):
            return int([l for l in text.splitlines()
                        if l.startswith(".p")][0].split()[1])

        assert rows(shared) < rows(plain)  # the a&b term is shared
        _mgr, back = parse_pla(shared).to_isfs(mgr=mgr)
        assert specs["f"].is_compatible(back["f"].on)
        assert specs["g"].is_compatible(back["g"].on)

    def test_shared_writer_refines_intervals(self):
        mgr = BDD(["a", "b"])
        from repro.boolfn import ISF
        isf = ISF.from_interval(parse(mgr, "a & b"), parse(mgr, "a"))
        text = write_pla({"y": isf}, ["a", "b"], shared=True)
        _mgr, back = parse_pla(text).to_isfs(mgr=mgr)
        # The written cover is one compatible CSF inside the interval.
        assert isf.is_compatible(back["y"].on)

    def test_write_to_file(self, tmp_path):
        mgr = BDD(["a"])
        specs = {"y": build_isf(mgr, [0], 0b10, 0b01)}
        path = tmp_path / "out.pla"
        write_pla(specs, ["a"], path=str(path))
        data = read_pla(str(path))
        assert data.num_inputs == 1

    def test_empty_specs_rejected(self):
        with pytest.raises(PLAError):
            write_pla({}, [])


class TestPLAData:
    def test_add_cube_validation(self):
        data = PLAData(2, 1)
        with pytest.raises(PLAError):
            data.add_cube("1", "1")
        with pytest.raises(PLAError):
            data.add_cube("11", "12")
        data.add_cube("1-", "1")
        assert data.cubes == [("1-", "1")]

    def test_make_manager(self):
        data = PLAData(2, 1, input_names=["p", "q"])
        mgr = data.make_manager()
        assert mgr.var_names == ("p", "q")
