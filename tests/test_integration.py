"""Cross-module integration tests: the full PLA -> decompose -> BLIF ->
verify pipeline, and cross-flow consistency between the three
synthesisers."""

from repro.baselines import bds_like_synthesize, sis_like_synthesize
from repro.bdd import BDD
from repro.bench.synth_pla import clustered_pla
from repro.boolfn import ISF, parse
from repro.decomp import bi_decompose
from repro.io import parse_blif, parse_pla, write_blif, write_pla
from repro.network import (compute_stats, to_aig, to_nand_network,
                           verify_against_isfs, verify_equivalent)
from repro.testability import analyze_testability, care_sets


PLA_TEXT = """\
.i 6
.o 3
.ilb a b c d e f
.ob u v w
.type fd
.p 8
11---- 100
--11-- 110
----11 011
10-01- 1-0
0--1-1 010
-01-0- 001
111--- -1-
0-0-0- --1
.e
"""


class TestFullPipeline:
    def test_pla_decompose_blif_verify(self, tmp_path):
        data = parse_pla(PLA_TEXT)
        mgr, specs = data.to_isfs()

        result = bi_decompose(specs, verify=True)
        blif_path = tmp_path / "out.blif"
        write_blif(result.netlist, model="pipe", path=str(blif_path))

        _mgr, outputs = parse_blif(blif_path.read_text(), mgr=mgr)
        for name, isf in specs.items():
            assert isf.is_compatible(outputs[name]), name

    def test_pla_roundtrip_then_decompose(self):
        data = parse_pla(PLA_TEXT)
        mgr, specs = data.to_isfs()
        text = write_pla(specs, list(data.input_names))
        _mgr2, specs2 = parse_pla(text).to_isfs(mgr=mgr)
        result = bi_decompose(specs2, verify=True)
        # The rewritten PLA describes the same intervals, so the
        # decomposition of either must satisfy both.
        verify_against_isfs(result.netlist, specs)

    def test_remaps_preserve_specification(self):
        data = parse_pla(PLA_TEXT)
        mgr, specs = data.to_isfs()
        result = bi_decompose(specs)
        for transform in (to_nand_network, to_aig):
            remapped = transform(result.netlist)
            verify_against_isfs(remapped, specs)
            verify_equivalent(result.netlist, remapped, mgr)

    def test_decomposition_is_testable_and_atpgable(self):
        data = parse_pla(PLA_TEXT)
        mgr, specs = data.to_isfs()
        result = bi_decompose(specs)
        report = analyze_testability(result.netlist, mgr,
                                     care_sets(specs))
        assert report.fully_testable(), report


class TestCrossFlowConsistency:
    def test_three_flows_agree_on_care_set(self):
        data = clustered_pla(10, 5, seed=42, cluster_size=3,
                             support_size=6, cubes_per_cluster=6,
                             dc_per_cluster=2)
        mgr, specs = data.to_isfs()
        bidecomp = bi_decompose(specs)
        sis = sis_like_synthesize(specs)
        bds = bds_like_synthesize(specs)
        for netlist in (bidecomp.netlist, sis.netlist, bds.netlist):
            verify_against_isfs(netlist, specs)
        # All three agree pointwise wherever the specification cares.
        from repro.network.extract import output_functions
        outs = [output_functions(nl, mgr)
                for nl in (bidecomp.netlist, sis.netlist, bds.netlist)]
        for name, isf in specs.items():
            care = isf.care.node
            reference = mgr.and_(outs[0][name], care)
            for other in outs[1:]:
                assert mgr.and_(other[name], care) == reference, name

    def test_multi_output_cache_sharing_shrinks_netlist(self):
        # Decomposing outputs together (shared cache) must not be worse
        # than the sum of decomposing them in isolation.
        data = clustered_pla(8, 4, seed=9, cluster_size=4,
                             support_size=6, cubes_per_cluster=8,
                             share_prob=0.7)
        mgr, specs = data.to_isfs()
        together = bi_decompose(specs)
        total_alone = 0
        for name, isf in specs.items():
            alone = bi_decompose({name: isf})
            total_alone += compute_stats(alone.netlist).gates
        assert compute_stats(together.netlist).gates <= total_alone

    def test_dont_cares_never_hurt(self):
        # Adding don't-cares can only loosen the interval, so the
        # decomposition of the loosened spec must verify against it.
        mgr = BDD(["a", "b", "c", "d", "e"])
        f = parse(mgr, "(a&b | c) ^ (d & ~e)")
        dc = parse(mgr, "a & ~b & e")
        tight = bi_decompose({"f": f})
        loose_spec = {"f": ISF.from_on_dc(f - dc, dc)}
        loose = bi_decompose(loose_spec)
        verify_against_isfs(loose.netlist, loose_spec)
        tight_stats = compute_stats(tight.netlist)
        loose_stats = compute_stats(loose.netlist)
        # Not a theorem, but a strong heuristic expectation on this
        # fixed instance (documented in the paper's introduction).
        assert loose_stats.area <= tight_stats.area + 10
