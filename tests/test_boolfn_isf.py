"""Tests for the incompletely-specified-function (ISF) abstraction."""

import pytest
from hypothesis import given, settings

from repro.bdd import BDD
from repro.boolfn import ISF, InconsistentISF, parse

from conftest import build_isf, isf_strategy, make_mgr


@pytest.fixture
def mgr():
    return BDD(["a", "b", "c"])


class TestConstruction:
    def test_overlapping_sets_rejected(self, mgr):
        a = mgr.fn_vars()[0]
        with pytest.raises(InconsistentISF):
            ISF(a, a)

    def test_requires_function_handles(self, mgr):
        with pytest.raises(TypeError):
            ISF(mgr.var("a"), mgr.nvar("a"))

    def test_managers_must_match(self, mgr):
        other = BDD(["a"])
        with pytest.raises(ValueError):
            ISF(mgr.fn_vars()[0], other.fn_false())

    def test_from_csf_has_no_dc(self, mgr):
        a, b, _c = mgr.fn_vars()
        isf = ISF.from_csf(a & b)
        assert isf.is_completely_specified()
        assert isf.dc.is_false()

    def test_from_on_dc(self, mgr):
        a, b, _c = mgr.fn_vars()
        isf = ISF.from_on_dc(a, a & b)   # overlap resolved toward DC
        assert isf.on == (a & ~b)
        assert isf.dc == (a & b)
        assert isf.off == ~a

    def test_from_interval(self, mgr):
        a, b, _c = mgr.fn_vars()
        isf = ISF.from_interval(a & b, a | b)
        assert isf.on == (a & b)
        assert isf.off == ~(a | b)
        assert isf.dc == (a ^ b)


class TestCompatibility:
    def test_bounds_are_compatible(self, mgr):
        a, b, _c = mgr.fn_vars()
        isf = ISF.from_interval(a & b, a | b)
        assert isf.is_compatible(a & b)
        assert isf.is_compatible(a | b)
        assert isf.is_compatible(a)
        assert isf.is_compatible(b)

    def test_outside_interval_rejected(self, mgr):
        a, b, c = mgr.fn_vars()
        isf = ISF.from_interval(a & b, a | b)
        assert not isf.is_compatible(c)
        assert not isf.is_compatible(~a)
        assert not isf.is_compatible(mgr.fn_true())

    def test_constant_compatibility(self, mgr):
        a = mgr.fn_vars()[0]
        assert ISF(mgr.fn_false(), a).is_constant_compatible() == 0
        assert ISF(a, mgr.fn_false()).is_constant_compatible() == 1
        assert ISF(a, ~a).is_constant_compatible() is None

    @settings(max_examples=40, deadline=None)
    @given(isf_strategy(3))
    def test_cover_is_always_compatible(self, pair):
        on_tt, off_tt = pair
        mgr = make_mgr(3)
        isf = build_isf(mgr, [0, 1, 2], on_tt, off_tt)
        assert isf.is_compatible(isf.cover())


class TestTransforms:
    def test_complement_swaps_sets(self, mgr):
        a, b, _c = mgr.fn_vars()
        isf = ISF.from_interval(a & b, a | b)
        comp = isf.complement()
        assert comp.on == isf.off
        assert comp.off == isf.on
        assert comp.dc == isf.dc

    def test_cofactor_both_sets(self, mgr):
        a, b, c = mgr.fn_vars()
        isf = ISF(a & b, ~a & c)
        cof = isf.cofactor("a", 1)
        assert cof.on == b
        assert cof.off.is_false()

    def test_restrict(self, mgr):
        a, b, c = mgr.fn_vars()
        isf = ISF(a & b & c, ~a)
        restricted = isf.restrict({"a": 1, "b": 1})
        assert restricted.on == c

    def test_structural_support(self, mgr):
        a, _b, c = mgr.fn_vars()
        isf = ISF(a, ~a & c)
        assert isf.structural_support() == (0, 2)


class TestComplementMemo:
    def test_complement_is_memoised(self, mgr):
        a, b, _c = mgr.fn_vars()
        isf = ISF(a & b, ~a)
        assert isf.complement() is isf.complement()

    def test_round_trip_returns_the_same_instance(self, mgr):
        a, b, _c = mgr.fn_vars()
        isf = ISF(a & b, ~a)
        assert isf.complement().complement() is isf

    def test_memoised_sibling_equals_a_fresh_complement(self, mgr):
        a, b, c = mgr.fn_vars()
        isf = ISF(a & b, ~a & c)
        assert isf.complement() == ISF(isf.off, isf.on)

    def test_memo_never_crosses_managers(self):
        # Two managers holding structurally identical ISFs: each memo
        # must wrap its own manager's Function handles, so the sibling
        # of one can never answer for the other.
        mgr1 = BDD(["a", "b"])
        mgr2 = BDD(["a", "b"])
        isf1 = ISF(mgr1.fn_vars()[0], ~mgr1.fn_vars()[0])
        isf2 = ISF(mgr2.fn_vars()[0], ~mgr2.fn_vars()[0])
        comp1, comp2 = isf1.complement(), isf2.complement()
        assert comp1 is not comp2
        assert comp1.mgr is mgr1
        assert comp2.mgr is mgr2


class TestDunder:
    def test_equality_and_hash(self, mgr):
        a, b, _c = mgr.fn_vars()
        isf1 = ISF(a & b, ~a)
        isf2 = ISF(b & a, ~a)
        assert isf1 == isf2
        assert hash(isf1) == hash(isf2)
        assert isf1 != ISF(a & b, ~(a & b))

    def test_repr_distinguishes_csf(self, mgr):
        a = mgr.fn_vars()[0]
        assert "CSF" in repr(ISF.from_csf(a))
        assert "ISF" in repr(ISF(a, mgr.fn_false()))
