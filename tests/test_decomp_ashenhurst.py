"""Tests for Ashenhurst simple disjoint decomposition (BDD-cut method)."""

import itertools

from hypothesis import given, settings

from repro.bdd import BDD, FALSE, TRUE
from repro.boolfn import from_truth_table, parse
from repro.decomp.ashenhurst import (ashenhurst_decompose,
                                     find_ashenhurst)

from conftest import brute_force, make_mgr, tt_strategy


def _column_multiplicity(table, bound, n):
    """Brute-force oracle: number of distinct columns of the map whose
    rows are bound-set assignments."""
    free = [v for v in range(n) if v not in bound]
    columns = set()
    for b_bits in range(1 << len(bound)):
        column = 0
        for f_bits in range(1 << len(free)):
            index = 0
            for k, var in enumerate(bound):
                index |= ((b_bits >> k) & 1) << var
            for k, var in enumerate(free):
                index |= ((f_bits >> k) & 1) << var
            column |= ((table >> index) & 1) << f_bits
        columns.add(column)
    return len(columns)


class TestAgainstOracle:
    @settings(max_examples=50, deadline=None)
    @given(tt_strategy(4))
    def test_decomposability_matches_column_multiplicity(self, table):
        for bound in itertools.combinations(range(4), 2):
            mgr = make_mgr(4)
            f = from_truth_table(mgr, [0, 1, 2, 3], table)
            expected = _column_multiplicity(table, bound, 4) <= 2
            result = ashenhurst_decompose(mgr, f, bound)
            assert (result is not None) == expected, (bound, table)

    @settings(max_examples=40, deadline=None)
    @given(tt_strategy(4))
    def test_recomposition_is_exact(self, table):
        for bound in itertools.combinations(range(4), 2):
            mgr = make_mgr(4)
            f = from_truth_table(mgr, [0, 1, 2, 3], table)
            expected_tt = brute_force(mgr, f, [0, 1, 2, 3])
            result = ashenhurst_decompose(mgr, f, bound)
            if result is None:
                continue
            rebuilt = result.recompose(mgr)
            assert brute_force(mgr, rebuilt, [0, 1, 2, 3]) \
                == expected_tt
            # G depends only on the bound set, H's parts only on free.
            assert set(mgr.support(result.g)) <= set(bound)
            free = set(range(4)) - set(bound)
            assert set(mgr.support(result.h1)) <= free
            assert set(mgr.support(result.h0)) <= free


class TestKnownStructures:
    def test_xor_of_bound_block(self):
        mgr = BDD(["a", "b", "c", "d"])
        f = parse(mgr, "(a ^ b) ^ (c & d)")
        result = ashenhurst_decompose(mgr, f.node, ["a", "b"])
        assert result is not None
        assert set(mgr.support(result.g)) == {0, 1}

    def test_mux_driven_by_block(self):
        mgr = BDD(["a", "b", "c", "d"])
        f = parse(mgr, "(a & b) & c | ~(a & b) & d")
        result = ashenhurst_decompose(mgr, f.node, ["a", "b"])
        assert result is not None
        # G must be (a & b) up to complement.
        g = mgr.fn(result.g)
        ab = parse(mgr, "a & b")
        assert g == ab or g == ~ab

    def test_undundecomposable_bound_set(self):
        # Column multiplicity of an adder-sum w.r.t. a mixed pair is 4.
        mgr = BDD(["a", "b", "c", "d"])
        f = parse(mgr, "(a & c) | (b & d) | (a & ~b & ~d)")
        assert ashenhurst_decompose(mgr, f.node, ["a", "b"]) is None

    def test_constant_and_independent_functions(self):
        mgr = BDD(["a", "b", "c"])
        result = ashenhurst_decompose(mgr, TRUE, ["a"])
        assert result is not None and result.h1 == TRUE
        f = parse(mgr, "b & c")
        result = ashenhurst_decompose(mgr, f.node, ["a"])
        assert result is not None
        assert result.g == FALSE
        assert result.h0 == f.node

    def test_function_of_bound_only(self):
        mgr = BDD(["a", "b", "c"])
        f = parse(mgr, "a ^ b")
        result = ashenhurst_decompose(mgr, f.node, ["a", "b"])
        assert result is not None
        assert result.recompose(mgr) == f.node


class TestSearch:
    def test_finds_hidden_block(self):
        mgr = BDD(["a", "b", "c", "d", "e"])
        f = parse(mgr, "((a ^ b) | c) & (d ^ e) | (~((a^b) | c) & ~d)")
        result = find_ashenhurst(mgr, f.node)
        assert result is not None
        rebuilt = result.recompose(mgr)
        assert brute_force(mgr, rebuilt, [0, 1, 2, 3, 4]) == \
            brute_force(mgr, f.node, [0, 1, 2, 3, 4])

    def test_none_for_prime_function(self):
        # 3-input majority has no simple disjoint decomposition with a
        # proper bound set of size 2.
        mgr = BDD(["a", "b", "c"])
        f = parse(mgr, "a&b | b&c | a&c")
        assert find_ashenhurst(mgr, f.node) is None
