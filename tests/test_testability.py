"""Tests for the stuck-at fault model, ATPG and coverage analysis —
including the reproduction of Theorem 5 on decomposed netlists."""

import pytest

from repro.bdd import BDD
from repro.boolfn import ISF, parse, weight_set
from repro.decomp import bi_decompose, bi_decompose_function
from repro.network import Netlist, gates as G
from repro.testability import (Fault, analyze_testability, care_sets,
                               classify_faults, detectability,
                               enumerate_faults, find_test,
                               generate_test_set, internal_faults,
                               patterns_by_name, simulate_coverage)

from conftest import make_mgr


def _redundant_netlist():
    """f = (a & b) | (a & b & c): the 3-input branch is redundant."""
    nl = Netlist(["a", "b", "c"])
    a, b, c = nl.inputs
    ab = nl.add_and(a, b)
    abc = nl._hashed(G.AND, (ab, c))   # bypass simplification on purpose
    out = nl._hashed(G.OR, (ab, abc))
    nl.set_output("f", out)
    return nl, ab, abc


class TestFaultModel:
    def test_enumeration_covers_live_signals_twice(self):
        nl = Netlist(["a", "b"])
        nl.set_output("y", nl.add_and(*nl.inputs))
        faults = enumerate_faults(nl)
        assert len(faults) == 6  # 2 inputs + 1 gate, sa0 and sa1

    def test_constants_excluded(self):
        nl = Netlist(["a"])
        nl.set_output("y", nl.add_or(nl.inputs[0], nl.constant(0)))
        # add_or folds the constant away; force one through outputs.
        nl.set_output("k", nl.constant(1))
        nodes = {fault.node for fault in enumerate_faults(nl)}
        assert nl.constant(1) not in nodes

    def test_dead_gates_excluded(self):
        nl = Netlist(["a", "b"])
        dead = nl.add_xor(*nl.inputs)
        nl.set_output("y", nl.add_and(*nl.inputs))
        nodes = {fault.node for fault in enumerate_faults(nl)}
        assert dead not in nodes

    def test_internal_faults_exclude_inputs(self):
        nl = Netlist(["a", "b"])
        nl.set_output("y", nl.add_and(*nl.inputs))
        assert all(nl.types[f.node] != G.INPUT
                   for f in internal_faults(nl))

    def test_fault_object(self):
        assert Fault(3, 0) == Fault(3, 0)
        assert Fault(3, 0) != Fault(3, 1)
        assert hash(Fault(3, 0)) == hash(Fault(3, 0))
        with pytest.raises(ValueError):
            Fault(1, 2)


class TestDetectability:
    def test_simple_and_gate(self):
        nl = Netlist(["a", "b"])
        g = nl.add_and(*nl.inputs)
        nl.set_output("y", g)
        mgr = BDD(["a", "b"])
        # Output stuck-at-0 is detected exactly by the (1,1) vector.
        detect = detectability(nl, mgr, Fault(g, 0))
        assert detect == mgr.and_(mgr.var("a"), mgr.var("b"))
        # Stuck-at-1 detected by the three other vectors.
        detect1 = detectability(nl, mgr, Fault(g, 1))
        assert detect1 == mgr.nand(mgr.var("a"), mgr.var("b"))

    def test_redundant_fault_has_empty_detectability(self):
        nl, ab, abc = _redundant_netlist()
        mgr = BDD(["a", "b", "c"])
        assert detectability(nl, mgr, Fault(abc, 0)) == mgr.false
        assert find_test(nl, mgr, Fault(abc, 0)) is None

    def test_find_test_returns_valid_vector(self):
        nl = Netlist(["a", "b"])
        g = nl.add_xor(*nl.inputs)
        nl.set_output("y", g)
        mgr = BDD(["a", "b"])
        fault = Fault(nl.input_node("a"), 1)
        pattern = find_test(nl, mgr, fault)
        assert pattern is not None
        detect = detectability(nl, mgr, fault)
        assert mgr.eval(detect, pattern)

    def test_care_set_restriction_creates_redundancy(self):
        nl = Netlist(["a", "b"])
        g = nl.add_and(*nl.inputs)
        nl.set_output("y", g)
        mgr = BDD(["a", "b"])
        # If (a=1, b=1) never occurs, stuck-at-0 becomes untestable.
        cares = {"y": mgr.nand(mgr.var("a"), mgr.var("b"))}
        assert detectability(nl, mgr, Fault(g, 0), cares=cares) \
            == mgr.false


class TestClassification:
    def test_redundant_netlist_classified(self):
        nl, ab, abc = _redundant_netlist()
        mgr = BDD(["a", "b", "c"])
        testable, redundant = classify_faults(nl, mgr)
        redundant_nodes = {(f.node, f.stuck_value) for f in redundant}
        assert (abc, 0) in redundant_nodes
        report = analyze_testability(nl, mgr)
        assert not report.fully_testable()
        assert 0 < report.coverage < 1

    def test_report_math(self):
        from repro.testability.coverage import FaultReport
        r = FaultReport(10, 8, [Fault(1, 0), Fault(1, 1)])
        assert r.coverage == 0.8
        r_empty = FaultReport(0, 0, [])
        assert r_empty.coverage == 1.0


class TestTheorem5OnDecompositions:
    @pytest.mark.parametrize("weights", [{1, 2}, {0, 3, 5}, {2, 4}])
    def test_symmetric_decompositions_fully_testable(self, weights):
        mgr = make_mgr(5)
        f = mgr.fn(weight_set(mgr, range(5), weights))
        result = bi_decompose_function(f)
        report = analyze_testability(result.netlist, mgr)
        assert report.fully_testable(), report

    def test_isf_decomposition_testable_on_care_set(self):
        mgr = BDD(["a", "b", "c", "d"])
        isf = ISF(parse(mgr, "a & b & ~c"),
                  parse(mgr, "~a & d | c & ~d"))
        result = bi_decompose({"f": isf}, verify=True)
        cares = care_sets({"f": isf})
        report = analyze_testability(result.netlist, mgr, cares)
        assert report.fully_testable(), report


class TestTestSetGeneration:
    def test_test_set_covers_all_detectable(self):
        mgr = make_mgr(5)
        f = mgr.fn(weight_set(mgr, range(5), {2, 3}))
        result = bi_decompose_function(f)
        nl = result.netlist
        patterns, redundant = generate_test_set(nl, mgr)
        assert not redundant
        named = patterns_by_name(mgr, patterns)
        detected, undetected = simulate_coverage(nl, named)
        assert not undetected
        # Fault dropping should compress well below 2 * #faults.
        assert len(patterns) < len(detected)

    def test_simulation_agrees_with_bdd_classification(self):
        nl, ab, abc = _redundant_netlist()
        mgr = BDD(["a", "b", "c"])
        testable, redundant = classify_faults(nl, mgr)
        patterns, redundant2 = generate_test_set(nl, mgr)
        assert set(redundant) == set(redundant2)
        named = patterns_by_name(mgr, patterns)
        detected, undetected = simulate_coverage(nl, named)
        assert set(undetected) == set(redundant)

    def test_empty_pattern_set(self):
        nl = Netlist(["a"])
        nl.set_output("y", nl.inputs[0])
        detected, undetected = simulate_coverage(nl, [])
        assert detected == []
        assert len(undetected) == 2
