"""Tests for the BLIF writer/reader."""

import pytest
from hypothesis import given, settings

from repro.bdd import BDD
from repro.boolfn import from_truth_table, parse
from repro.io import (BLIFError, netlist_from_functions, parse_blif,
                      write_blif)
from repro.network import Netlist, gates as G, verify_equivalent
from repro.network.extract import output_functions

from conftest import make_mgr, tt_strategy


def _rich_netlist():
    nl = Netlist(["a", "b", "c"])
    a, b, c = nl.inputs
    nl.set_output("o_and", nl.add_gate(G.AND, a, b))
    nl.set_output("o_xor", nl.add_gate(G.XOR, b, c))
    nl.set_output("o_nand", nl.add_gate(G.NAND, a, c))
    nl.set_output("o_nor", nl.add_gate(G.NOR, a, b))
    nl.set_output("o_xnor", nl.add_gate(G.XNOR, a, c))
    nl.set_output("o_or", nl.add_gate(G.OR, b, c))
    nl.set_output("o_not", nl.add_not(a))
    nl.set_output("o_k1", nl.constant(1))
    nl.set_output("o_k0", nl.constant(0))
    return nl


class TestWriter:
    def test_structure(self):
        text = write_blif(_rich_netlist(), model="m")
        assert text.startswith(".model m")
        assert ".inputs a b c" in text
        assert ".outputs o_and" in text.replace("\n", " ")
        assert text.rstrip().endswith(".end")

    def test_roundtrip_all_gate_types(self):
        nl = _rich_netlist()
        text = write_blif(nl)
        mgr = BDD(["a", "b", "c"])
        _mgr, outputs = parse_blif(text, mgr=mgr)
        expected = output_functions(nl, mgr)
        for name, node in expected.items():
            assert outputs[name].node == node, name

    def test_write_to_file(self, tmp_path):
        path = tmp_path / "x.blif"
        write_blif(_rich_netlist(), path=str(path))
        assert path.read_text().startswith(".model")

    def test_name_collision_with_inputs_avoided(self):
        nl = Netlist(["n1", "n2"])
        nl.set_output("y", nl.add_and(*nl.inputs))
        text = write_blif(nl)
        mgr = BDD(["n1", "n2"])
        _mgr, outputs = parse_blif(text, mgr=mgr)
        assert outputs["y"].node == mgr.and_(mgr.var("n1"), mgr.var("n2"))

    @settings(max_examples=20, deadline=None)
    @given(tt_strategy(3))
    def test_roundtrip_random_functions(self, table):
        mgr = make_mgr(3)
        f = mgr.fn(from_truth_table(mgr, [0, 1, 2], table))
        nl = netlist_from_functions(mgr, {"y": f})
        text = write_blif(nl)
        _mgr, outputs = parse_blif(text, mgr=mgr)
        assert outputs["y"] == f


class TestReader:
    def test_wide_names_table(self):
        text = """\
.model wide
.inputs a b c d
.outputs y
.names a b c d y
1--- 1
-11- 1
---1 1
.end
"""
        mgr, outputs = parse_blif(text)
        expected = parse(mgr, "a | b & c | d")
        assert outputs["y"] == expected

    def test_offset_cover(self):
        text = ".model m\n.inputs a b\n.outputs y\n.names a b y\n11 0\n.end\n"
        mgr, outputs = parse_blif(text)
        assert outputs["y"] == ~parse(mgr, "a & b")

    def test_constant_tables(self):
        text = (".model m\n.inputs a\n.outputs k1 k0\n"
                ".names k1\n1\n.names k0\n.end\n")
        mgr, outputs = parse_blif(text)
        assert outputs["k1"].is_true()
        assert outputs["k0"].is_false()

    def test_continuation_lines(self):
        text = (".model m\n.inputs a \\\nb\n.outputs y\n"
                ".names a b y\n11 1\n.end\n")
        mgr, outputs = parse_blif(text)
        assert outputs["y"] == parse(mgr, "a & b")

    def test_undriven_output_rejected(self):
        text = ".model m\n.inputs a\n.outputs y\n.end\n"
        with pytest.raises(BLIFError):
            parse_blif(text)

    def test_mixed_polarity_cover_rejected(self):
        text = (".model m\n.inputs a b\n.outputs y\n"
                ".names a b y\n11 1\n00 0\n.end\n")
        with pytest.raises(BLIFError):
            parse_blif(text)

    def test_non_topological_rejected(self):
        text = (".model m\n.inputs a\n.outputs y\n"
                ".names ghost y\n1 1\n.end\n")
        with pytest.raises(BLIFError):
            parse_blif(text)

    def test_unsupported_construct_rejected(self):
        text = ".model m\n.inputs a\n.outputs y\n.latch a y 0\n.end\n"
        with pytest.raises(BLIFError):
            parse_blif(text)


class TestNetlistFromFunctions:
    def test_mux_tree_equivalence(self):
        mgr = BDD(["a", "b", "c"])
        f = parse(mgr, "a ^ (b & ~c)")
        nl = netlist_from_functions(mgr, {"y": f})
        outs = output_functions(nl, mgr)
        assert outs["y"] == f.node

    def test_two_netlists_equivalent(self):
        mgr = BDD(["a", "b"])
        f = parse(mgr, "a | b")
        nl1 = netlist_from_functions(mgr, {"y": f})
        nl2 = Netlist(["a", "b"])
        nl2.set_output("y", nl2.add_or(*nl2.inputs))
        assert verify_equivalent(nl1, nl2, mgr)
