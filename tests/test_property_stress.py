"""Cross-feature property and stress tests.

These deliberately combine subsystems that do not meet in the unit
tests: garbage collection under reordering, decomposition idempotence,
multi-output random specifications, and full-pipeline randomised runs.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bdd import BDD, live_size, reorder_to, sift, swap_levels
from repro.boolfn import ISF, from_truth_table
from repro.decomp import bi_decompose, bi_decompose_function
from repro.network import verify_against_isfs
from repro.network.extract import output_functions

from conftest import brute_force, build_isf, isf_strategy, make_mgr, \
    tt_strategy


class TestGcReorderInterplay:
    @settings(max_examples=15, deadline=None)
    @given(tt_strategy(4), st.permutations([0, 1, 2, 3]))
    def test_collect_then_reorder_then_operate(self, table, order):
        mgr = make_mgr(4)
        f = from_truth_table(mgr, [0, 1, 2, 3], table)
        expected = brute_force(mgr, f, [0, 1, 2, 3])
        mgr.ref(f)
        # Garbage + collect.
        from_truth_table(mgr, [0, 1, 2, 3], (~table) & 0xFFFF)
        mgr.collect()
        # Reorder in place.
        reorder_to(mgr, order)
        assert brute_force(mgr, f, [0, 1, 2, 3]) == expected
        # Collect again after reordering; the function must survive.
        mgr.collect()
        assert brute_force(mgr, f, [0, 1, 2, 3]) == expected

    def test_swap_after_collect_consistent(self):
        mgr = make_mgr(3)
        f = from_truth_table(mgr, [0, 1, 2], 0b10010110)
        mgr.ref(f)
        from_truth_table(mgr, [0, 1, 2], 0b01010101)
        mgr.collect()
        before = brute_force(mgr, f, [0, 1, 2])
        swap_levels(mgr, 0)
        swap_levels(mgr, 1)
        assert brute_force(mgr, f, [0, 1, 2]) == before

    def test_sift_with_garbage_in_arena(self):
        mgr = BDD(["a0", "a1", "a2", "b0", "b1", "b2"])
        f = mgr.false
        for i in range(3):
            f = mgr.or_(f, mgr.and_(mgr.var("a%d" % i),
                                    mgr.var("b%d" % i)))
        # Unrelated garbage should not confuse live-size accounting.
        mgr.xor(mgr.var("a0"), mgr.var("b2"))
        final = sift(mgr, [f])
        assert final == live_size(mgr, [f]) == 8


class TestDecompositionIdempotence:
    @settings(max_examples=25, deadline=None)
    @given(tt_strategy(4))
    def test_redecomposing_the_result_is_stable(self, table):
        mgr = make_mgr(4)
        f = mgr.fn(from_truth_table(mgr, [0, 1, 2, 3], table))
        first = bi_decompose_function(f)
        g = mgr.fn(output_functions(first.netlist, mgr)["f"])
        assert g == f
        second = bi_decompose_function(g)
        # Same function in, same netlist out (engine is deterministic).
        assert first.netlist.types == second.netlist.types
        assert first.netlist.fanins == second.netlist.fanins


class TestMultiOutputRandom:
    @settings(max_examples=15, deadline=None)
    @given(isf_strategy(4), isf_strategy(4), isf_strategy(4))
    def test_three_random_outputs_share_one_netlist(self, p1, p2, p3):
        mgr = make_mgr(4)
        specs = {
            "u": build_isf(mgr, [0, 1, 2, 3], *p1),
            "v": build_isf(mgr, [0, 1, 2, 3], *p2),
            "w": build_isf(mgr, [0, 1, 2, 3], *p3),
        }
        result = bi_decompose(specs)
        verify_against_isfs(result.netlist, specs)
        # Output order must not affect correctness.
        reordered = dict(reversed(list(specs.items())))
        result2 = bi_decompose(reordered)
        verify_against_isfs(result2.netlist, specs)

    def test_many_outputs_random_seeded(self):
        rng = random.Random(0xBEEF)
        mgr = make_mgr(6)
        specs = {}
        for k in range(12):
            table = rng.getrandbits(64)
            f = mgr.fn(from_truth_table(mgr, list(range(6)), table))
            specs["o%d" % k] = ISF.from_csf(f)
        result = bi_decompose(specs, verify=True)
        assert result.cache_stats["lookups"] > 0


class TestPipelineRandomised:
    def test_pla_text_fuzz_roundtrip(self):
        # Randomised (seeded) PLA -> ISFs -> decompose -> BLIF -> parse
        # -> compatible, across several seeds in one go.
        from repro.bench.synth_pla import structured_pla
        from repro.io import parse_blif, write_blif
        for seed in (1, 7, 42):
            data = structured_pla(10, 6, seed=seed, cluster_size=3,
                                  support_size=6)
            mgr, specs = data.to_isfs()
            result = bi_decompose(specs, verify=True)
            text = write_blif(result.netlist)
            _mgr, outputs = parse_blif(text, mgr=mgr)
            for name, isf in specs.items():
                assert isf.is_compatible(outputs[name]), (seed, name)
