"""Tests for the Boolean expression parser."""

import pytest

from repro.bdd import BDD
from repro.boolfn import ExprError, parse


@pytest.fixture
def mgr():
    return BDD(["a", "b", "c"])


class TestBasics:
    def test_literals_and_constants(self, mgr):
        assert parse(mgr, "a") == mgr.fn_vars()[0]
        assert parse(mgr, "1").is_true()
        assert parse(mgr, "0").is_false()

    def test_negation_forms(self, mgr):
        a = mgr.fn_vars()[0]
        assert parse(mgr, "~a") == ~a
        assert parse(mgr, "!a") == ~a
        assert parse(mgr, "~~a") == a

    def test_operator_aliases(self, mgr):
        a, b, _c = mgr.fn_vars()
        assert parse(mgr, "a * b") == (a & b)
        assert parse(mgr, "a + b") == (a | b)


class TestPrecedence:
    def test_and_binds_tighter_than_xor(self, mgr):
        a, b, c = mgr.fn_vars()
        assert parse(mgr, "a ^ b & c") == (a ^ (b & c))

    def test_xor_binds_tighter_than_or(self, mgr):
        a, b, c = mgr.fn_vars()
        assert parse(mgr, "a | b ^ c") == (a | (b ^ c))

    def test_not_binds_tightest(self, mgr):
        a, b, _c = mgr.fn_vars()
        assert parse(mgr, "~a & b") == (~a & b)

    def test_parentheses_override(self, mgr):
        a, b, c = mgr.fn_vars()
        assert parse(mgr, "(a | b) & c") == ((a | b) & c)

    def test_left_associativity(self, mgr):
        a, b, c = mgr.fn_vars()
        assert parse(mgr, "a ^ b ^ c") == ((a ^ b) ^ c)


class TestAutoVars:
    def test_unknown_variable_rejected_by_default(self, mgr):
        with pytest.raises(ExprError):
            parse(mgr, "zz")

    def test_auto_vars_creates_variables(self):
        mgr = BDD()
        f = parse(mgr, "p & ~q", auto_vars=True)
        assert mgr.var_names == ("p", "q")
        assert f(p=1, q=0)

    def test_bracketed_identifiers(self):
        mgr = BDD()
        f = parse(mgr, "x[0] ^ x[1]", auto_vars=True)
        assert "x[0]" in mgr.var_names


class TestErrors:
    def test_trailing_garbage(self, mgr):
        with pytest.raises(ExprError):
            parse(mgr, "a b")

    def test_unbalanced_parens(self, mgr):
        with pytest.raises(ExprError):
            parse(mgr, "(a & b")

    def test_bad_character(self, mgr):
        with pytest.raises(ExprError):
            parse(mgr, "a @ b")

    def test_empty_operand(self, mgr):
        with pytest.raises(ExprError):
            parse(mgr, "a &")


class TestRoundTripWithEvaluation:
    def test_complex_expression(self, mgr):
        f = parse(mgr, "(a ^ b) & (b | ~c) ^ ~(a & c)")
        for i in range(8):
            a, b, c = i & 1, (i >> 1) & 1, (i >> 2) & 1
            expected = ((a ^ b) & (b | (1 - c))) ^ (1 - (a & c))
            assert f(a=a, b=b, c=c) == bool(expected), (a, b, c)
