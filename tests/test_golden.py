"""Golden-result regression net.

The decomposition engine is fully deterministic (no wall-clock, no
unordered-set iteration in decision paths), so every benchmark's cost
metrics are reproducible bit-for-bit.  This test pins them: any change
to a heuristic, the cache, the grouping order or the cost model shows
up here as an explicit diff instead of silent quality drift.

Regenerate after an intentional change with::

    python - <<'PY'
    import json
    from repro.bench import get
    from repro.decomp import bi_decompose
    names = json.load(open("tests/golden_results.json"))
    out = {}
    for name in names:
        mgr, specs = get(name).build()
        r = bi_decompose(specs)
        st = r.netlist_stats()
        out[name] = {"gates": st.gates, "exors": st.exors,
                     "inverters": st.inverters, "area": st.area,
                     "cascades": st.cascades,
                     "delay": round(st.delay, 4),
                     "calls": r.stats.calls,
                     "cache_hits": r.stats.cache_hits,
                     "shannon": r.stats.shannon}
    json.dump(out, open("tests/golden_results.json", "w"),
              indent=2, sort_keys=True)
    PY
"""

import json
import os

import pytest

from repro.bench import get
from repro.decomp import bi_decompose

GOLDEN_PATH = os.path.join(os.path.dirname(__file__),
                           "golden_results.json")
with open(GOLDEN_PATH) as _handle:
    GOLDEN = json.load(_handle)

#: The slowest benchmarks are exercised by benchmarks/, not here.
FAST = sorted(name for name in GOLDEN
              if name not in ("alu4", "cordic", "16sym8", "cps"))


@pytest.mark.parametrize("name", FAST)
def test_golden_metrics_exact(name):
    expected = GOLDEN[name]
    mgr, specs = get(name).build()
    result = bi_decompose(specs)
    stats = result.netlist_stats()
    got = {
        "gates": stats.gates,
        "exors": stats.exors,
        "inverters": stats.inverters,
        "area": stats.area,
        "cascades": stats.cascades,
        "delay": round(stats.delay, 4),
        "calls": result.stats.calls,
        "cache_hits": result.stats.cache_hits,
        "shannon": result.stats.shannon,
    }
    assert got == expected, (
        "golden drift on %s — if intentional, regenerate "
        "tests/golden_results.json (see module docstring)" % name)


def test_golden_file_covers_table_benchmarks():
    from repro.bench import TABLE2, TABLE3
    missing = (set(TABLE2) | set(TABLE3)) - set(GOLDEN)
    assert not missing, missing
