"""Tests for the netlist linter (repro.analysis)."""

import io
import json

import pytest

from repro.analysis import Severity, lint_netlist
from repro.bdd import BDD
from repro.boolfn import ISF, parse
from repro.cli import main
from repro.decomp import bi_decompose
from repro.io import parse_blif_netlist, write_blif
from repro.network import Netlist


def _clean_netlist():
    nl = Netlist(["a", "b", "c"])
    a, b, c = nl.inputs
    nl.set_output("f", nl.add_or(nl.add_and(a, b), nl.add_not(c)))
    return nl


def _findings(report, rule_id):
    return [f for f in report.findings if f.rule == rule_id]


class TestCleanNetlists:
    def test_builder_output_is_clean(self):
        report = lint_netlist(_clean_netlist())
        assert not report.findings
        assert report.summary()["clean"] is True

    def test_decomposed_benchmark_is_clean(self):
        from repro.bench.registry import get
        mgr, specs = get("9sym").build()
        result = bi_decompose(specs, verify=True)
        report = lint_netlist(result.netlist,
                              specs={result.output_names[n]: isf
                                     for n, isf in specs.items()})
        assert not report.errors(), [str(f) for f in report.errors()]

    def test_blif_round_trip_stays_clean(self):
        nl = _clean_netlist()
        raw = parse_blif_netlist(write_blif(nl))
        report = lint_netlist(raw)
        assert not report.errors()
        assert not report.warnings()


class TestErrorRules:
    def test_unknown_gate(self):
        nl = _clean_netlist()
        nl.types[4] = "FROB"
        report = lint_netlist(nl)
        assert _findings(report, "unknown-gate")
        assert report.has_errors()

    def test_bad_arity(self):
        nl = _clean_netlist()
        node = nl.add_raw_gate("AND", (nl.inputs[0], nl.inputs[1]))
        nl.fanins[node] = (nl.inputs[0],)
        nl.set_output("g", node)
        report = lint_netlist(nl)
        assert _findings(report, "bad-arity")

    def test_topology_violation(self):
        nl = _clean_netlist()
        late = nl.add_raw_gate("AND", (nl.inputs[0], nl.inputs[1]))
        nl.set_output("g", late)
        # Rewire an earlier gate to read the later id: breaks the
        # topological-id invariant (node 3 is AND(a, b) in the fixture).
        nl.fanins[3] = (late, nl.inputs[1])
        report = lint_netlist(nl)
        assert _findings(report, "topology")

    def test_undriven_output(self):
        nl = _clean_netlist()
        nl.outputs.append(("ghost", nl.num_nodes() + 5))
        report = lint_netlist(nl)
        assert _findings(report, "undriven-output")

    def test_support_mismatch(self):
        nl = _clean_netlist()
        mgr = BDD(["a", "b", "c"])
        # Spec depends on a,b only; the netlist cone also reads c.
        spec = ISF.from_csf(parse(mgr, "a & b"))
        report = lint_netlist(nl, specs={"f": spec})
        found = _findings(report, "support-mismatch")
        assert found
        assert "c" in found[0].data["foreign_inputs"]

    def test_support_match_passes(self):
        nl = _clean_netlist()
        mgr = BDD(["a", "b", "c"])
        spec = ISF.from_csf(parse(mgr, "a & b | ~c"))
        report = lint_netlist(nl, specs={"f": spec})
        assert not _findings(report, "support-mismatch")

    def test_spec_names_missing_output(self):
        nl = _clean_netlist()
        mgr = BDD(["a", "b", "c"])
        spec = ISF.from_csf(parse(mgr, "a"))
        report = lint_netlist(nl, specs={"nope": spec})
        assert _findings(report, "support-mismatch")


class TestWarningRules:
    def test_dead_gate(self):
        nl = _clean_netlist()
        nl.add_raw_gate("OR", (nl.inputs[0], nl.inputs[2]))
        report = lint_netlist(nl)
        assert _findings(report, "dead-gate")

    def test_double_negation(self):
        nl = _clean_netlist()
        inner = nl.add_raw_gate("NOT", (nl.inputs[0],))
        outer = nl.add_raw_gate("NOT", (inner,))
        nl.set_output("g", outer)
        report = lint_netlist(nl)
        assert _findings(report, "double-negation")

    def test_const_foldable(self):
        nl = _clean_netlist()
        node = nl.add_raw_gate("AND", (nl.inputs[0], nl.constant(1)))
        nl.set_output("g", node)
        report = lint_netlist(nl)
        assert _findings(report, "const-foldable")

    def test_const_foldable_equal_fanins(self):
        nl = _clean_netlist()
        node = nl.add_raw_gate("XOR", (nl.inputs[0], nl.inputs[0]))
        nl.set_output("g", node)
        report = lint_netlist(nl)
        assert _findings(report, "const-foldable")

    def test_structural_duplicate(self):
        nl = _clean_netlist()
        a, b = nl.inputs[0], nl.inputs[1]
        first = nl.add_raw_gate("AND", (a, b))
        second = nl.add_raw_gate("AND", (b, a))  # commuted: still a dup
        nl.set_output("g", first)
        nl.set_output("h", second)
        report = lint_netlist(nl)
        assert _findings(report, "structural-duplicate")

    def test_functional_duplicate(self):
        nl = Netlist(["a", "b"])
        a, b = nl.inputs
        direct = nl.add_raw_gate("AND", (a, b))
        nand = nl.add_raw_gate("NAND", (a, b))
        rebuilt = nl.add_raw_gate("NOT", (nand,))
        nl.set_output("f", direct)
        nl.set_output("g", rebuilt)
        report = lint_netlist(nl)
        found = _findings(report, "functional-duplicate")
        assert found
        # Three inputs: exhaustive simulation, so the match is exact.
        assert found[0].data["exact"] is True

    def test_random_signatures_above_input_limit(self):
        names = ["x%d" % i for i in range(14)]
        nl = Netlist(names)
        acc = nl.inputs[0]
        for node in nl.inputs[1:]:
            acc = nl.add_xor(acc, node)
        nl.set_output("parity", acc)
        dup = nl.add_raw_gate("XOR", (nl.inputs[0], nl.inputs[1]))
        nl.set_output("d", dup)
        report = lint_netlist(nl)
        found = _findings(report, "functional-duplicate")
        assert found  # the planted duplicate of the first XOR
        assert found[0].data["exact"] is False


class TestInfoRules:
    def test_dangling_input(self):
        nl = Netlist(["a", "b"])
        nl.set_output("f", nl.inputs[0])
        report = lint_netlist(nl)
        found = _findings(report, "dangling-input")
        assert found and "b" in found[0].message

    def test_output_alias(self):
        nl = _clean_netlist()
        nl.set_output("f2", nl.output_node("f"))
        report = lint_netlist(nl)
        assert _findings(report, "output-alias")


class TestReportAndSelection:
    def test_rule_selection(self):
        nl = _clean_netlist()
        nl.add_raw_gate("OR", (nl.inputs[0], nl.inputs[2]))  # dead
        report = lint_netlist(nl, rules=["topology"])
        assert report.rules_run == ("topology",)
        assert not report.findings  # dead-gate rule not selected

    def test_unknown_rule_id_rejected(self):
        with pytest.raises(ValueError):
            lint_netlist(_clean_netlist(), rules=["no-such-rule"])

    def test_severity_threshold(self):
        nl = _clean_netlist()
        nl.add_raw_gate("OR", (nl.inputs[0], nl.inputs[2]))  # warning
        nl.set_output("f2", nl.output_node("f"))             # info
        report = lint_netlist(nl)
        assert not report.worst(Severity.ERROR)
        assert len(report.worst(Severity.WARNING)) == 1
        assert len(report.worst(Severity.INFO)) == 2

    def test_worst_validates_threshold_even_when_empty(self):
        from repro.analysis.rules import LintReport
        report = LintReport([])
        assert report.worst(Severity.ERROR) == []
        with pytest.raises(ValueError):
            report.worst("bogus")

    def test_report_serialises(self):
        nl = _clean_netlist()
        nl.types[4] = "FROB"
        report = lint_netlist(nl)
        doc = json.loads(json.dumps(report.as_dict()))
        assert doc["summary"]["errors"] >= 1
        assert any(f["rule"] == "unknown-gate" for f in doc["findings"])
        assert "unknown-gate" in report.format_text()

    def test_structurally_broken_netlist_skips_simulation(self):
        # An unknown gate type must not crash the simulation-backed
        # rules; they bail out and the structural errors are reported.
        nl = _clean_netlist()
        nl.types[4] = "FROB"
        report = lint_netlist(nl)
        assert report.has_errors()


PLA = """\
.i 3
.o 1
.ilb a b c
.ob f
.p 2
11- 1
--0 1
.e
"""


class TestLintCommand:
    @pytest.fixture
    def pla_path(self, tmp_path):
        path = tmp_path / "in.pla"
        path.write_text(PLA)
        return str(path)

    def test_clean_flow_exits_zero(self, pla_path, tmp_path):
        blif_path = str(tmp_path / "out.blif")
        assert main(["decompose", pla_path, "-o", blif_path]) == 0
        out = io.StringIO()
        assert main(["lint", blif_path, "--spec", pla_path],
                    stdout=out) == 0
        assert "0 error" in out.getvalue()

    def test_defective_blif_fails_threshold(self, tmp_path):
        blif = tmp_path / "bad.blif"
        blif.write_text("\n".join([
            ".model bad", ".inputs a b", ".outputs f",
            ".names a t1", "0 1",
            ".names t1 t2", "0 1",         # NOT(NOT(a)): double negation
            ".names t2 b f", "11 1",
            ".end", ""]))
        out = io.StringIO()
        # Warnings only: default --fail-on error still passes...
        assert main(["lint", str(blif)], stdout=out) == 0
        assert "double-negation" in out.getvalue()
        # ...but a warning threshold trips.
        assert main(["lint", str(blif), "--fail-on", "warning"],
                    stdout=io.StringIO()) == 1
        assert main(["lint", str(blif), "--fail-on", "never"],
                    stdout=io.StringIO()) == 0

    def test_unknown_fail_on_exits_two(self, pla_path, tmp_path):
        blif_path = str(tmp_path / "out.blif")
        assert main(["decompose", pla_path, "-o", blif_path]) == 0
        # argparse's choices guard the argv path with a usage error...
        with pytest.raises(SystemExit) as excinfo:
            main(["lint", blif_path, "--fail-on", "bogus"],
                 stdout=io.StringIO())
        assert excinfo.value.code == 2
        # ...and cmd_lint validates eagerly for programmatic callers,
        # even though the report itself would be clean.
        import types
        from repro.cli import cmd_lint
        args = types.SimpleNamespace(netlist=blif_path, spec=None,
                                     fail_on="bogus", json=None)
        assert cmd_lint(args, io.StringIO()) == 2

    def test_json_report(self, pla_path, tmp_path):
        blif_path = str(tmp_path / "out.blif")
        assert main(["decompose", pla_path, "-o", blif_path]) == 0
        json_path = tmp_path / "lint.json"
        assert main(["lint", blif_path, "--json", str(json_path)],
                    stdout=io.StringIO()) == 0
        doc = json.loads(json_path.read_text())
        assert doc["summary"]["clean"] is True
        assert "rules_run" in doc

    def test_stats_json_embeds_lint_summary(self, pla_path, tmp_path):
        stats_path = tmp_path / "stats.json"
        assert main(["decompose", pla_path, "-o",
                     str(tmp_path / "out.blif"),
                     "--stats-json", str(stats_path)]) == 0
        doc = json.loads(stats_path.read_text())
        assert doc["lint"]["errors"] == 0
        assert doc["lint"]["clean"] is True


class TestLintSarif:
    """``repro lint --sarif`` reuses the repolint SARIF exporter."""

    DEFECTIVE = "\n".join([
        ".model bad", ".inputs a b", ".outputs f",
        ".names a t1", "0 1",
        ".names t1 t2", "0 1",         # NOT(NOT(a)): double negation
        ".names t2 b f", "11 1",
        ".end", ""])

    def test_sarif_file_round_trips(self, tmp_path):
        blif = tmp_path / "bad.blif"
        blif.write_text(self.DEFECTIVE)
        sarif_path = tmp_path / "lint.sarif"
        out = io.StringIO()
        assert main(["lint", str(blif), "--sarif", str(sarif_path),
                     "--fail-on", "never"], stdout=out) == 0
        doc = json.loads(sarif_path.read_text())
        assert doc["version"] == "2.1.0"
        run = doc["runs"][0]
        assert run["tool"]["driver"]["name"] == "repro-netlist-lint"
        # The full netlist rule catalogue is present, findings or not.
        from repro.analysis.rules import RULES
        assert {r["id"] for r in run["tool"]["driver"]["rules"]} == \
            set(RULES)
        # Netlist findings carry no source path of their own: they
        # anchor to the linted file and name their nodes in the
        # properties bag, so the artifact still locates every result.
        results = {r["ruleId"]: r for r in run["results"]}
        assert "double-negation" in results
        hit = results["double-negation"]
        uri = hit["locations"][0]["physicalLocation"]["artifactLocation"]
        assert uri["uri"] == str(blif)
        assert hit["properties"]["nodes"]
        # Levels agree with the registry's severities.
        for result in run["results"]:
            level = {"error": "error", "warning": "warning",
                     "info": "note"}[RULES[result["ruleId"]].severity]
            assert result["level"] == level

    def test_sarif_to_stdout(self, tmp_path):
        blif = tmp_path / "bad.blif"
        blif.write_text(self.DEFECTIVE)
        out = io.StringIO()
        assert main(["lint", str(blif), "--sarif", "-",
                     "--fail-on", "never"], stdout=out) == 0
        text = out.getvalue()
        doc = json.loads(text[text.index("{"):])
        assert doc["runs"][0]["tool"]["driver"]["name"] == \
            "repro-netlist-lint"

    def test_lint_and_selfcheck_emit_one_format(self, tmp_path):
        """Both analyzers produce the same SARIF skeleton."""
        blif = tmp_path / "ok.blif"
        blif.write_text("\n".join([
            ".model t", ".inputs a b", ".outputs f",
            ".names a b f", "11 1", ".end", ""]))
        lint_sarif = tmp_path / "lint.sarif"
        self_sarif = tmp_path / "self.sarif"
        assert main(["lint", str(blif), "--sarif", str(lint_sarif),
                     "--fail-on", "never"], stdout=io.StringIO()) == 0
        (tmp_path / "src" / "repro").mkdir(parents=True)
        (tmp_path / "src" / "repro" / "a.py").write_text("x = 1\n")
        assert main(["selfcheck", "--root", str(tmp_path),
                     str(tmp_path / "src"),
                     "--sarif", str(self_sarif)],
                    stdout=io.StringIO()) == 0
        lint_doc = json.loads(lint_sarif.read_text())
        self_doc = json.loads(self_sarif.read_text())
        assert lint_doc["$schema"] == self_doc["$schema"]
        assert lint_doc["version"] == self_doc["version"]
        assert set(lint_doc["runs"][0]) == set(self_doc["runs"][0])
