"""Tests for the Minato-Morreale irredundant SOP algorithm."""

import pytest
from hypothesis import given, settings

from repro.bdd import (BDD, FALSE, TRUE, Cube, cover_literal_count,
                       cover_to_bdd, isop)
from repro.boolfn import from_truth_table

from conftest import isf_strategy, make_mgr, tt_strategy


class TestInterval:
    @settings(max_examples=80, deadline=None)
    @given(isf_strategy(4))
    def test_cover_lies_in_interval(self, pair):
        on_tt, off_tt = pair
        mgr = make_mgr(4)
        variables = [0, 1, 2, 3]
        lower = from_truth_table(mgr, variables, on_tt)
        upper = mgr.not_(from_truth_table(mgr, variables, off_tt))
        cover, cubes = isop(mgr, lower, upper)
        assert mgr.diff(lower, cover) == FALSE, "cover misses the on-set"
        assert mgr.diff(cover, upper) == FALSE, "cover hits the off-set"
        assert cover_to_bdd(mgr, cubes) == cover

    @settings(max_examples=60, deadline=None)
    @given(tt_strategy(4))
    def test_exact_interval_reproduces_function(self, table):
        mgr = make_mgr(4)
        variables = [0, 1, 2, 3]
        f = from_truth_table(mgr, variables, table)
        cover, cubes = isop(mgr, f, f)
        assert cover == f

    def test_empty_interval_rejected(self):
        mgr = make_mgr(2)
        with pytest.raises(ValueError):
            isop(mgr, TRUE, mgr.var(0))


class TestIrredundancy:
    @settings(max_examples=40, deadline=None)
    @given(tt_strategy(4))
    def test_no_cube_is_removable(self, table):
        mgr = make_mgr(4)
        variables = [0, 1, 2, 3]
        f = from_truth_table(mgr, variables, table)
        cover, cubes = isop(mgr, f, f)
        for skip in range(len(cubes)):
            reduced = [cube for i, cube in enumerate(cubes) if i != skip]
            partial = cover_to_bdd(mgr, reduced)
            assert mgr.diff(f, partial) != FALSE, \
                "cube %d is redundant" % skip

    def test_constants(self):
        mgr = make_mgr(2)
        cover, cubes = isop(mgr, FALSE, FALSE)
        assert cover == FALSE and cubes == []
        cover, cubes = isop(mgr, TRUE, TRUE)
        assert cover == TRUE and len(cubes) == 1
        assert cubes[0].num_literals() == 0


class TestDontCareExploitation:
    def test_dc_makes_cover_smaller(self):
        # on-set = a & b, dc covers everything with a=1: cover can be
        # just the single literal a.
        mgr = BDD(["a", "b"])
        a, b = mgr.var("a"), mgr.var("b")
        lower = mgr.and_(a, b)
        upper = a
        cover, cubes = isop(mgr, lower, upper)
        assert cover == a
        assert cover_literal_count(cubes) == 1

    def test_tautology_interval_picks_constant(self):
        mgr = BDD(["a"])
        cover, cubes = isop(mgr, mgr.var("a"), TRUE)
        assert cover == TRUE


class TestCubeObject:
    def test_with_literal_copies(self):
        cube = Cube({0: 1})
        extended = cube.with_literal(1, 0)
        assert cube.literals == {0: 1}
        assert extended.literals == {0: 1, 1: 0}

    def test_equality_and_hash(self):
        assert Cube({0: 1}) == Cube({0: 1})
        assert hash(Cube({0: 1})) == hash(Cube({0: 1}))
        assert Cube({0: 1}) != Cube({0: 0})

    def test_to_bdd(self):
        mgr = make_mgr(3)
        node = Cube({0: 1, 2: 0}).to_bdd(mgr)
        assert node == mgr.and_(mgr.var(0), mgr.not_(mgr.var(2)))
