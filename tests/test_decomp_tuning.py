"""Tests for the Section 5 / Section 7 tuning knobs (exhaustive
grouping refinement and multi-variable weak XA)."""

from hypothesis import given, settings

from repro.bdd import BDD
from repro.boolfn import ISF, parse, weight_set
from repro.decomp import (AND_GATE, DecompositionConfig, EXOR_GATE,
                          OR_GATE, and_decomposable, bi_decompose,
                          exor_decomposable, find_weak_grouping,
                          group_variables, improve_grouping,
                          or_decomposable)
from repro.network import verify_against_isfs

from conftest import build_isf, isf_strategy, make_mgr


def _check_of(gate):
    return {OR_GATE: or_decomposable, AND_GATE: and_decomposable,
            EXOR_GATE: exor_decomposable}[gate]


class TestImproveGrouping:
    @settings(max_examples=20, deadline=None)
    @given(isf_strategy(4))
    def test_refined_grouping_stays_valid(self, pair):
        mgr = make_mgr(4)
        isf = build_isf(mgr, [0, 1, 2, 3], *pair)
        support = isf.structural_support()
        for gate in (OR_GATE, AND_GATE):
            grouping = group_variables(isf, support, gate)
            if grouping is None:
                continue
            xa, xb = improve_grouping(isf, support, gate, *grouping)
            assert xa and xb and not (xa & xb)
            assert _check_of(gate)(isf, xa, xb)
            # Never worse in total grouped variables.
            assert len(xa) + len(xb) >= \
                len(grouping[0]) + len(grouping[1])

    def test_refinement_is_noop_when_already_maximal(self):
        mgr = BDD(["a", "b", "c", "d"])
        isf = ISF.from_csf(parse(mgr, "a | b | c | d"))
        grouping = group_variables(isf, isf.structural_support(),
                                   OR_GATE)
        refined = improve_grouping(isf, isf.structural_support(),
                                   OR_GATE, *grouping)
        assert set(refined[0]) | set(refined[1]) == {0, 1, 2, 3}

    def test_engine_accepts_exhaustive_config(self):
        mgr = make_mgr(5)
        specs = {"f": mgr.fn(weight_set(mgr, range(5), {1, 2, 4}))}
        config = DecompositionConfig(exhaustive_grouping=True)
        result = bi_decompose(specs, config=config)
        verify_against_isfs(result.netlist, specs)


class TestObjective:
    def test_delay_objective_still_correct(self):
        mgr = make_mgr(5)
        specs = {"f": mgr.fn(weight_set(mgr, range(5), {1, 2, 4}))}
        result = bi_decompose(specs,
                              config=DecompositionConfig(
                                  objective="delay"))
        verify_against_isfs(result.netlist, specs)

    def test_delay_score_prefers_balance(self):
        from repro.decomp import grouping_score
        balanced = grouping_score({0, 1}, {2, 3}, objective="delay")
        lopsided = grouping_score({0, 1, 2, 3, 4}, {5},
                                  objective="delay")
        assert balanced > lopsided
        # Area mode ranks them the other way (more variables wins).
        assert grouping_score({0, 1, 2, 3, 4}, {5}) > \
            grouping_score({0, 1}, {2, 3})

    def test_invalid_objective_rejected(self):
        import pytest
        with pytest.raises(ValueError):
            DecompositionConfig(objective="power")


class TestWeakXaSize:
    def test_larger_xa_allowed(self):
        mgr = BDD(["a", "b", "c", "d"])
        # A function needing weak steps with plenty of smoothing room.
        isf = ISF.from_csf(parse(mgr, "a&b | b&c | c&d | a&d"))
        weak1 = find_weak_grouping(isf, isf.structural_support(),
                                   max_vars=1)
        weak2 = find_weak_grouping(isf, isf.structural_support(),
                                   max_vars=3)
        assert weak1 is not None and weak2 is not None
        assert len(weak1[1]) == 1
        assert len(weak2[1]) >= len(weak1[1])
        # The gate choice is anchored by the best single variable.
        assert weak2[0] == weak1[0]

    def test_growth_monotone_in_dc_gain(self):
        mgr = BDD(["a", "b", "c", "d"])
        isf = ISF.from_csf(parse(mgr, "a&b | b&c | c&d | a&d"))
        gate, xa = find_weak_grouping(isf, isf.structural_support(),
                                      max_vars=4)
        # Growing XA must never make component A's must-set larger
        # than the single-variable choice.
        gate1, xa1 = find_weak_grouping(isf, isf.structural_support(),
                                        max_vars=1)
        from repro.bdd import exists, sat_count
        target = isf.on.node if gate == OR_GATE else isf.off.node
        other = isf.off.node if gate == OR_GATE else isf.on.node
        big = sat_count(mgr, mgr.and_(target, exists(mgr, xa, other)))
        small = sat_count(mgr, mgr.and_(target,
                                        exists(mgr, xa1, other)))
        assert big <= small

    def test_engine_with_wide_weak_sets_still_correct(self):
        mgr = BDD(["a", "b", "c", "d", "e"])
        specs = {"f": parse(mgr, "a&b | b&c | c&d | d&e | a&e")}
        for size in (1, 2, 3):
            config = DecompositionConfig(weak_xa_size=size)
            result = bi_decompose(specs, config=config)
            verify_against_isfs(result.netlist, specs)
