"""Tests for the experiment harness (table regeneration paths)."""

import io

import pytest

from repro.harness import (main, print_generic, print_table2, print_table3,
                           run_cache_ablation, run_integrated_atpg,
                           run_strong_weak_ablation, run_table2,
                           run_table3, run_testability,
                           run_tuning_ablation)

TINY2 = ("9sym", "misex1")
TINY3 = ("rd53", "t481")


class TestTable2:
    def test_rows_have_expected_shape(self):
        rows = run_table2(TINY2)
        assert [row["name"] for row in rows] == list(TINY2)
        for row in rows:
            for flow in ("sis", "bidecomp"):
                for key in ("gates", "exors", "area", "cascades",
                            "delay", "time"):
                    assert key in row[flow]
            assert row["decomp_stats"]["calls"] > 0

    def test_sis_like_never_uses_exors(self):
        rows = run_table2(TINY2)
        for row in rows:
            assert row["sis"]["exors"] == 0

    def test_bidecomp_beats_sis_on_9sym(self):
        # The paper's headline: BI-DECOMP wins area AND delay on the
        # symmetric benchmark against the SOP-mapped flow.
        row = run_table2(("9sym",))[0]
        assert row["bidecomp"]["area"] < row["sis"]["area"]
        assert row["bidecomp"]["gates"] < row["sis"]["gates"]
        assert row["bidecomp"]["exors"] > 0

    def test_printer_formats_all_rows(self):
        rows = run_table2(TINY2)
        out = io.StringIO()
        print_table2(rows, stream=out)
        text = out.getvalue()
        for name in TINY2:
            assert name in text


class TestTable3:
    def test_rows_and_printer(self):
        rows = run_table3(TINY3)
        out = io.StringIO()
        print_table3(rows, stream=out)
        text = out.getvalue()
        for name in TINY3:
            assert name in text

    def test_bidecomp_beats_bds_on_t481(self):
        row = [r for r in run_table3(("t481",))][0]
        assert row["bidecomp"]["gates"] <= row["bds"]["gates"]


class TestTestabilityExperiment:
    def test_decompositions_fully_testable(self):
        rows = run_testability(("rd53", "t481"))
        for row in rows:
            assert row["fully_testable"], row
            assert row["coverage"] == 1.0


class TestAblations:
    def test_cache_ablation_reports_reuse(self):
        rows = run_cache_ablation(("rd53", "9sym"))
        for row in rows:
            assert 0 <= row["reuse_rate"] <= 1
            # The cache never makes the netlist bigger.
            assert row["with"]["gates"] <= row["without"]["gates"]
        # On these benchmarks reuse actually happens.
        assert any(row["reuse_rate"] > 0 for row in rows)

    def test_strong_weak_ablation_shape(self):
        rows = run_strong_weak_ablation(("9sym",))
        row = rows[0]
        # Weak-only (the conjectured BDS behaviour) must not beat the
        # full algorithm on a symmetric function.
        assert row["full"]["area"] <= row["weak_only"]["area"]
        # Disabling EXOR hurts area on 9sym (EXOR-intensive).
        assert row["full"]["area"] <= row["no_exor"]["area"]

    def test_tuning_ablation(self):
        rows = run_tuning_ablation(("rd53",))
        row = rows[0]
        for key in ("base", "refined_grouping", "weak_xa3"):
            assert row[key]["gates"] > 0
        # Section 5's verdict: the refinement moves area only slightly.
        assert abs(row["refined_grouping"]["area"] - row["base"]["area"]) \
            <= 0.25 * row["base"]["area"] + 10

    def test_integrated_atpg_rows(self):
        rows = run_integrated_atpg(("rd53",))
        row = rows[0]
        assert row["redundant"] == 0
        assert 0.0 <= row["seed_rate"] <= 1.0
        assert row["patterns"] > 0

    def test_generic_printer(self):
        rows = run_cache_ablation(("rd53",))
        out = io.StringIO()
        print_generic(rows, ("with", "without", "reuse_rate"), stream=out)
        assert "rd53" in out.getvalue()


class TestCli:
    def test_quick_table3_runs(self, capsys):
        assert main(["table3", "--quick", "--no-verify"]) == 0
        captured = capsys.readouterr()
        assert "Table 3" in captured.out
        assert "9sym" in captured.out
