"""Tests for the benchmark builders and the registry."""

from math import comb

import pytest

from repro.bench import REGISTRY, TABLE2, TABLE3, get, names
from repro.bench.synth_pla import clustered_pla, windowed_pla
from repro.bdd import sat_count
from repro.boolfn import parse

SMALL = ("9sym", "rd53", "rd73", "rd84", "5xp1", "alu2", "t481",
         "misex1", "16sym8")


class TestRegistry:
    def test_table_membership(self):
        assert set(TABLE2) <= set(names())
        assert set(TABLE3) <= set(names())
        assert len(TABLE2) == 10
        assert len(TABLE3) == 7

    @pytest.mark.parametrize("name", SMALL)
    def test_declared_dimensions_hold(self, name):
        bench = get(name)
        mgr, specs = bench.build()
        assert mgr.num_vars == bench.inputs
        assert len(specs) == bench.outputs

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            get("nonexistent")

    def test_notes_mark_exactness(self):
        assert get("9sym").exact
        assert get("rd84").exact
        assert not get("misex1").exact


class TestExactBuilders:
    def test_9sym_is_weight_3_to_6(self):
        mgr, specs = get("9sym").build()
        f = specs["f"].on
        expected = sum(comb(9, k) for k in (3, 4, 5, 6))
        assert f.sat_count() == expected
        # Spot-check symmetry: permuting an assignment keeps the value.
        assert f(**{"x%d" % i: 1 if i < 3 else 0 for i in range(9)})
        assert f(**{"x%d" % i: 1 if i >= 6 else 0 for i in range(9)})

    def test_rd84_outputs_are_count_bits(self):
        mgr, specs = get("rd84").build()
        assert set(specs) == {"c0", "c1", "c2", "c3"}
        assignment = {"x%d" % i: 1 if i < 5 else 0 for i in range(8)}
        got = sum(1 << b for b in range(4)
                  if specs["c%d" % b].on(**assignment))
        assert got == 5

    def test_16sym8_is_totally_symmetric(self):
        mgr, specs = get("16sym8").build()
        f = specs["f"].on
        base = {"x%d" % i: 1 if i < 4 else 0 for i in range(16)}
        rotated = {"x%d" % i: 1 if 4 <= i < 8 else 0 for i in range(16)}
        assert f(**base) == f(**rotated)
        assert f(**base)  # weight 4 -> on (4 mod 8 in {4..7})

    def test_5xp1_computes_square_plus_x(self):
        mgr, specs = get("5xp1").build()
        x = 11
        assignment = {"x%d" % i: (x >> i) & 1 for i in range(7)}
        value = sum(1 << b for b in range(10)
                    if specs["y%d" % b].on(**assignment))
        assert value == (x * x + x) % 1024

    def test_t481_structure(self):
        mgr, specs = get("t481").build()
        expected = parse(
            mgr, "(x0^x1)&(x2^x3) ^ (x4^x5)&(x6^x7)"
                 " ^ (x8^x9)&(x10^x11) ^ (x12^x13)&(x14^x15)")
        assert specs["f"].on == expected

    def test_xor5_and_maj(self):
        _mgr, specs = get("xor5").build()
        assert specs["f"].on.sat_count() == 16
        _mgr2, specs2 = get("maj").build()
        assert specs2["f"].on(x0=1, x1=1, x2=1, x3=0, x4=0)
        assert not specs2["f"].on(x0=1, x1=1, x2=0, x3=0, x4=0)

    def test_squar5_exhaustive(self):
        _mgr, specs = get("squar5").build()
        for x in range(32):
            assignment = {"x%d" % i: (x >> i) & 1 for i in range(5)}
            value = sum(1 << b for b in range(8)
                        if specs["y%d" % b].on(**assignment))
            assert value == (x * x) % 256, x

    def test_z4ml_is_an_adder(self):
        _mgr, specs = get("z4ml").build()
        for a in range(8):
            for b in range(8):
                for cin in (0, 1):
                    assignment = {"cin": cin}
                    for i in range(3):
                        assignment["a%d" % i] = (a >> i) & 1
                        assignment["b%d" % i] = (b >> i) & 1
                    value = sum(1 << i for i in range(4)
                                if specs["s%d" % i].on(**assignment))
                    assert value == a + b + cin

    def test_mul4_spot_checks(self):
        _mgr, specs = get("mul4").build()
        for a, b in ((3, 5), (7, 9), (15, 15), (0, 11)):
            assignment = {}
            for i in range(4):
                assignment["a%d" % i] = (a >> i) & 1
                assignment["b%d" % i] = (b >> i) & 1
            value = sum(1 << i for i in range(8)
                        if specs["p%d" % i].on(**assignment))
            assert value == (a * b) % 256, (a, b)

    def test_alu2_add_op(self):
        mgr, specs = get("alu2").build()
        # Control 00 selects addition: a=3, b=5 -> 8.
        assignment = {"c0": 0, "c1": 0}
        for i in range(4):
            assignment["a%d" % i] = (3 >> i) & 1
            assignment["b%d" % i] = (5 >> i) & 1
        got = sum(1 << b for b in range(5)
                  if specs["r%d" % b].on(**assignment))
        assert got == 8


class TestDeterminism:
    @pytest.mark.parametrize("name", ("misex1", "vg2", "pdc"))
    def test_seeded_plas_are_reproducible(self, name):
        _m1, specs1 = get(name).build()
        _m2, specs2 = get(name).build()
        for out in specs1:
            assert specs1[out].on.sat_count() == specs2[out].on.sat_count()
            assert specs1[out].off.sat_count() == \
                specs2[out].off.sat_count()

    def test_pdc_has_dont_cares(self):
        _mgr, specs = get("pdc").build()
        assert any(not isf.dc.is_false() for isf in specs.values())


class TestGenerators:
    def test_clustered_pla_dimensions(self):
        data = clustered_pla(10, 6, seed=1, cluster_size=3,
                             support_size=5, cubes_per_cluster=4)
        assert data.num_inputs == 10
        assert data.num_outputs == 6
        # 2 clusters x 4 cubes.
        assert len(data.cubes) == 8
        mgr, specs = data.to_isfs()
        assert len(specs) == 6

    def test_clustered_pla_respects_support(self):
        data = clustered_pla(12, 4, seed=2, cluster_size=4,
                             support_size=5, cubes_per_cluster=6)
        mgr, specs = data.to_isfs()
        union_support = set()
        for isf in specs.values():
            union_support.update(isf.structural_support())
        assert len(union_support) <= 5

    def test_dc_cubes_emitted(self):
        data = clustered_pla(8, 2, seed=3, cluster_size=2,
                             support_size=4, cubes_per_cluster=3,
                             dc_per_cluster=2)
        assert any("-" in outputs for _inputs, outputs in data.cubes)

    def test_windowed_pla(self):
        data = windowed_pla(20, 20, seed=4, window=5)
        mgr, specs = data.to_isfs()
        for name, isf in specs.items():
            assert len(isf.structural_support()) <= 5
