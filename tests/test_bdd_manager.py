"""Unit tests for the BDD manager core: canonicity, operators, cofactors."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bdd import BDD, BDDError, FALSE, TRUE
from repro.boolfn import from_truth_table, to_truth_table

from conftest import brute_force, make_mgr, tt_strategy


class TestVariableManagement:
    def test_add_var_returns_indices_in_order(self):
        mgr = BDD()
        assert mgr.add_var("a") == 0
        assert mgr.add_var("b") == 1
        assert mgr.num_vars == 2
        assert mgr.var_names == ("a", "b")

    def test_default_names(self):
        mgr = BDD()
        mgr.add_var()
        mgr.add_var()
        assert mgr.var_names == ("x0", "x1")

    def test_duplicate_name_rejected(self):
        mgr = BDD(["a"])
        with pytest.raises(BDDError):
            mgr.add_var("a")

    def test_var_index_accepts_names_and_ints(self):
        mgr = BDD(["a", "b"])
        assert mgr.var_index("b") == 1
        assert mgr.var_index(0) == 0

    def test_unknown_variable_raises(self):
        mgr = BDD(["a"])
        with pytest.raises(BDDError):
            mgr.var_index("zz")
        with pytest.raises(BDDError):
            mgr.var_index(5)

    def test_initial_order_matches_creation(self):
        mgr = BDD(["a", "b", "c"])
        assert mgr.order() == (0, 1, 2)
        assert mgr.level_of_var("b") == 1
        assert mgr.var_at_level(2) == 2


class TestCanonicity:
    def test_terminals_are_fixed(self):
        mgr = BDD(["a"])
        assert mgr.false == FALSE
        assert mgr.true == TRUE

    def test_reduction_collapses_equal_children(self):
        mgr = BDD(["a", "b"])
        # ite(a, b, b) must be b, no node created for a.
        assert mgr.ite(mgr.var("a"), mgr.var("b"), mgr.var("b")) \
            == mgr.var("b")

    def test_same_function_same_node(self):
        mgr = BDD(["a", "b", "c"])
        f = mgr.or_(mgr.and_(mgr.var("a"), mgr.var("b")), mgr.var("c"))
        g = mgr.or_(mgr.var("c"), mgr.and_(mgr.var("b"), mgr.var("a")))
        assert f == g

    def test_demorgan(self):
        mgr = BDD(["a", "b"])
        a, b = mgr.var("a"), mgr.var("b")
        assert mgr.not_(mgr.and_(a, b)) == mgr.or_(mgr.not_(a), mgr.not_(b))
        assert mgr.nand(a, b) == mgr.not_(mgr.and_(a, b))
        assert mgr.nor(a, b) == mgr.not_(mgr.or_(a, b))
        assert mgr.xnor(a, b) == mgr.not_(mgr.xor(a, b))

    def test_double_negation(self):
        mgr = BDD(["a", "b"])
        f = mgr.xor(mgr.var("a"), mgr.var("b"))
        assert mgr.not_(mgr.not_(f)) == f


class TestOperatorsAgainstTruthTables:
    @settings(max_examples=60, deadline=None)
    @given(tt_strategy(3), tt_strategy(3))
    def test_binary_ops_match_oracle(self, tt_f, tt_g):
        mgr = make_mgr(3)
        variables = [0, 1, 2]
        f = from_truth_table(mgr, variables, tt_f)
        g = from_truth_table(mgr, variables, tt_g)
        mask = (1 << 8) - 1
        assert brute_force(mgr, mgr.and_(f, g), variables) == tt_f & tt_g
        assert brute_force(mgr, mgr.or_(f, g), variables) == tt_f | tt_g
        assert brute_force(mgr, mgr.xor(f, g), variables) == tt_f ^ tt_g
        assert brute_force(mgr, mgr.not_(f), variables) == ~tt_f & mask
        assert brute_force(mgr, mgr.diff(f, g), variables) == tt_f & ~tt_g
        assert brute_force(mgr, mgr.implies(f, g), variables) \
            == (~tt_f | tt_g) & mask

    @settings(max_examples=40, deadline=None)
    @given(tt_strategy(3), tt_strategy(3), tt_strategy(3))
    def test_ite_matches_oracle(self, tt_f, tt_g, tt_h):
        mgr = make_mgr(3)
        variables = [0, 1, 2]
        f = from_truth_table(mgr, variables, tt_f)
        g = from_truth_table(mgr, variables, tt_g)
        h = from_truth_table(mgr, variables, tt_h)
        expected = (tt_f & tt_g) | (~tt_f & tt_h) & ((1 << 8) - 1)
        assert brute_force(mgr, mgr.ite(f, g, h), variables) == expected


class TestCofactorComposeRename:
    def test_cofactor_by_name_and_value(self):
        mgr = BDD(["a", "b"])
        f = mgr.and_(mgr.var("a"), mgr.var("b"))
        assert mgr.cofactor(f, "a", 1) == mgr.var("b")
        assert mgr.cofactor(f, "a", 0) == FALSE

    def test_restrict_multiple(self):
        mgr = BDD(["a", "b", "c"])
        f = mgr.ite(mgr.var("a"), mgr.var("b"), mgr.var("c"))
        assert mgr.restrict(f, {"a": 1, "b": 0}) == FALSE
        assert mgr.restrict(f, {"a": 0}) == mgr.var("c")

    def test_compose_substitutes_function(self):
        mgr = BDD(["a", "b", "c"])
        f = mgr.xor(mgr.var("a"), mgr.var("b"))
        g = mgr.and_(mgr.var("b"), mgr.var("c"))
        composed = mgr.compose(f, "a", g)
        # (b & c) ^ b
        expected = mgr.xor(g, mgr.var("b"))
        assert composed == expected

    def test_compose_with_constant_is_cofactor(self):
        mgr = BDD(["a", "b"])
        f = mgr.or_(mgr.var("a"), mgr.var("b"))
        assert mgr.compose(f, "a", TRUE) == mgr.cofactor(f, "a", 1)

    def test_rename_disjoint(self):
        mgr = BDD(["a", "b", "p", "q"])
        f = mgr.and_(mgr.var("a"), mgr.not_(mgr.var("b")))
        renamed = mgr.rename(f, {"a": "p", "b": "q"})
        assert renamed == mgr.and_(mgr.var("p"), mgr.not_(mgr.var("q")))

    def test_rename_swap_rejected(self):
        # A swap {a->b, b->a} has overlapping old/new sets and would be
        # order-dependent with sequential composition.
        mgr = BDD(["a", "b"])
        f = mgr.and_(mgr.var("a"), mgr.not_(mgr.var("b")))
        with pytest.raises(BDDError):
            mgr.rename(f, {"a": "b", "b": "a"})

    def test_rename_onto_existing_var_collapses(self):
        # Disjoint old/new sets are fine even if the new variable
        # already occurs: a -> b turns a & b into b.
        mgr = BDD(["a", "b"])
        f = mgr.and_(mgr.var("a"), mgr.var("b"))
        assert mgr.rename(f, {"a": "b"}) == mgr.var("b")


class TestStructureQueries:
    def test_support(self):
        mgr = BDD(["a", "b", "c"])
        f = mgr.and_(mgr.var("a"), mgr.var("c"))
        assert mgr.support(f) == (0, 2)
        assert mgr.support_names(f) == ("a", "c")
        assert mgr.support(TRUE) == ()

    def test_support_ignores_cancelled_vars(self):
        mgr = BDD(["a", "b"])
        f = mgr.xor(mgr.var("b"), mgr.var("b"))
        assert mgr.support(f) == ()

    def test_node_count(self):
        mgr = BDD(["a", "b"])
        assert mgr.node_count(TRUE) == 1
        a = mgr.var("a")
        assert mgr.node_count(a) == 3  # node + two terminals
        f = mgr.and_(a, mgr.var("b"))
        assert mgr.node_count(f) == 4

    def test_eval_requires_full_assignment(self):
        mgr = BDD(["a", "b"])
        f = mgr.and_(mgr.var("a"), mgr.var("b"))
        assert mgr.eval(f, {"a": 1, "b": 1}) is True
        assert mgr.eval(f, {"a": 1, "b": 0}) is False
        with pytest.raises(BDDError):
            mgr.eval(f, {"a": 1})

    def test_top_var(self):
        mgr = BDD(["a", "b"])
        f = mgr.and_(mgr.var("a"), mgr.var("b"))
        assert mgr.top_var(f) == 0
        with pytest.raises(BDDError):
            mgr.top_var(TRUE)


class TestTruthTableRoundTrip:
    @settings(max_examples=50, deadline=None)
    @given(tt_strategy(4))
    def test_roundtrip(self, table):
        mgr = make_mgr(4)
        variables = [0, 1, 2, 3]
        node = from_truth_table(mgr, variables, table)
        assert to_truth_table(mgr, variables, node) == table

    def test_reject_out_of_scope_function(self):
        mgr = make_mgr(3)
        f = mgr.and_(mgr.var(0), mgr.var(2))
        with pytest.raises(ValueError):
            to_truth_table(mgr, [0, 1], f)

    def test_reject_oversized_table(self):
        mgr = make_mgr(2)
        with pytest.raises(ValueError):
            from_truth_table(mgr, [0, 1], 1 << 16)
