"""Tests for the theorem-contract checker (repro.analysis.contracts)."""

import io

import pytest

from repro.analysis import (CheckedDecompositionEngine, ContractStats,
                            ContractViolation)
from repro.bdd import BDD
from repro.boolfn import ISF, parse
from repro.decomp import DecompositionError, bi_decompose
from repro.pipeline import PipelineConfig, Session


def _session(mgr):
    return Session(config=PipelineConfig(check_contracts=True), mgr=mgr)


def _specs(mgr):
    return {
        "f": ISF.from_csf(parse(mgr, "a & b | c & d")),
        "g": ISF.from_csf(parse(mgr, "(a ^ b) & (c | d)")),
    }


class TestCheckedCleanRuns:
    def test_session_records_contract_stats(self):
        mgr = BDD(["a", "b", "c", "d"])
        session = _session(mgr)
        assert isinstance(session._ensure_engine(),
                          CheckedDecompositionEngine)
        record = {}
        result, _names = session.decompose_specs(_specs(mgr),
                                                 record=record)
        assert result.netlist.outputs
        contracts = record["contracts"]
        assert contracts["total_checks"] > 0
        assert contracts["total_violations"] == 0
        assert session.stats_snapshot()["contract_totals"][
            "total_checks"] == contracts["total_checks"]

    def test_benchmark_under_check(self):
        from repro.bench.registry import get
        mgr, specs = get("9sym").build()
        result = bi_decompose(specs, verify=True, check=True)
        assert result.functions

    def test_check_flag_off_uses_plain_engine(self):
        mgr = BDD(["a", "b"])
        session = Session(mgr=mgr)
        engine = session._ensure_engine()
        assert not isinstance(engine, CheckedDecompositionEngine)

    def test_events_stay_silent_on_clean_run(self):
        mgr = BDD(["a", "b", "c", "d"])
        session = _session(mgr)
        session.decompose_specs(_specs(mgr))
        assert not session.events.named("contract_violated")


class TestViolations:
    def test_same_manager_contract(self):
        mgr = BDD(["a", "b"])
        session = _session(mgr)
        engine = session._ensure_engine()
        foreign = BDD(["a", "b"])
        isf = ISF.from_csf(parse(foreign, "a & b"))
        with pytest.raises(ContractViolation) as excinfo:
            engine.decompose(isf)
        assert excinfo.value.contract == "same-manager"
        events = session.events.named("contract_violated")
        assert events and events[0]["contract"] == "same-manager"

    def test_poisoned_cache_node_detected(self):
        mgr = BDD(["a", "b", "c"])
        session = _session(mgr)
        spec = ISF.from_csf(parse(mgr, "a & b | c"))
        session.decompose_specs({"f": spec})
        engine = session.engine
        assert engine.cache.size() > 0
        # Corrupt every cached entry: point it at netlist node 0 (the
        # input 'a'), which implements none of the cached functions.
        for bucket in engine.cache._by_support.values():
            bucket[:] = [(csf, 0) for csf, _node in bucket]
        again = ISF.from_csf(parse(mgr, "a & b | c"))
        with pytest.raises(ContractViolation) as excinfo:
            session.decompose_specs({"f2": again})
        assert excinfo.value.contract == "cache-node-function"
        assert excinfo.value.detail["node"] == 0
        events = session.events.named("contract_violated")
        assert events
        assert events[-1]["contract"] == "cache-node-function"

    def test_incompatible_cache_hit_detected_directly(self):
        mgr = BDD(["a", "b"])
        session = _session(mgr)
        engine = session._ensure_engine()
        isf = ISF.from_csf(parse(mgr, "a & b"))
        wrong = parse(mgr, "a | b")  # outside the (Q, ~R) interval
        with pytest.raises(ContractViolation) as excinfo:
            engine._validate_cache_hit(isf, wrong, 0, False)
        assert excinfo.value.contract == "cache-compatible"

    def test_result_interval_contract_directly(self):
        mgr = BDD(["a", "b"])
        session = _session(mgr)
        engine = session._ensure_engine()
        isf = ISF.from_csf(parse(mgr, "a & b"))
        with pytest.raises(ContractViolation) as excinfo:
            engine._check(isf, parse(mgr, "a | b"), "OR")
        assert excinfo.value.contract == "result-interval"

    def test_violation_is_typed_decomposition_error(self):
        violation = ContractViolation("or-residue", "boom",
                                      detail={"k": 1})
        assert isinstance(violation, DecompositionError)
        assert violation.contract == "or-residue"
        assert violation.detail == {"k": 1}
        assert "or-residue" in str(violation)


class TestWeakStepContracts:
    def _engine(self, mgr):
        return _session(mgr)._ensure_engine()

    def test_useless_weak_or_violates(self):
        # For f = a & b, exists(a, R) is the whole space, so the weak-OR
        # residual Q & ~exists(a, R) injects no don't-cares: the Table 1
        # termination argument breaks and the contract must fire.
        mgr = BDD(["a", "b"])
        engine = self._engine(mgr)
        from repro.decomp import OR_GATE
        isf = ISF.from_csf(parse(mgr, "a & b"))
        with pytest.raises(ContractViolation) as excinfo:
            engine._on_step(isf, [0, 1], OR_GATE, [0], None, isf)
        assert excinfo.value.contract == "weak-usefulness"
        assert engine.contract_stats.as_dict()["violations"] == {
            "weak-usefulness": 1}

    def test_useless_weak_and_violates(self):
        mgr = BDD(["a", "b"])
        engine = self._engine(mgr)
        from repro.decomp import AND_GATE
        isf = ISF.from_csf(parse(mgr, "a | b"))
        with pytest.raises(ContractViolation) as excinfo:
            engine._on_step(isf, [0, 1], AND_GATE, [0], None, isf)
        assert excinfo.value.contract == "weak-usefulness"

    def test_weak_xa_outside_support_violates(self):
        mgr = BDD(["a", "b", "c"])
        engine = self._engine(mgr)
        from repro.decomp import OR_GATE
        isf = ISF.from_csf(parse(mgr, "a & b"))
        with pytest.raises(ContractViolation) as excinfo:
            engine._on_step(isf, [0, 1], OR_GATE, [2], None, isf)
        assert excinfo.value.contract == "disjoint-sets"

    def test_useful_weak_or_passes(self):
        # f = a | b & c genuinely weak-OR-decomposes around XA={a}.
        mgr = BDD(["a", "b", "c"])
        engine = self._engine(mgr)
        from repro.decomp import OR_GATE
        isf = ISF.from_csf(parse(mgr, "a | b & c"))
        engine._on_step(isf, [0, 1, 2], OR_GATE, [0], None, isf)
        doc = engine.contract_stats.as_dict()
        assert doc["checks"]["weak-usefulness"] == 1
        assert doc["total_violations"] == 0


class TestContractStats:
    def test_counting_and_serialisation(self):
        stats = ContractStats()
        stats.checked("same-manager")
        stats.checked("same-manager")
        stats.checked("or-residue")
        stats.violated("or-residue")
        doc = stats.as_dict()
        assert doc["checks"] == {"same-manager": 2, "or-residue": 1}
        assert doc["violations"] == {"or-residue": 1}
        assert doc["total_checks"] == 3
        assert doc["total_violations"] == 1


PLA = """\
.i 3
.o 1
.ilb a b c
.ob f
.p 2
11- 1
--1 1
.e
"""


class TestCheckCLI:
    def test_decompose_check_flag(self, tmp_path):
        from repro.cli import main
        pla = tmp_path / "in.pla"
        pla.write_text(PLA)
        out = io.StringIO()
        assert main(["decompose", str(pla), "-o",
                     str(tmp_path / "out.blif"), "--check"],
                    stdout=out) == 0

    def test_contract_stats_round_trip_stats_json(self, tmp_path):
        import json
        from repro.cli import main
        pla = tmp_path / "in.pla"
        pla.write_text(PLA)
        stats_path = tmp_path / "stats.json"
        assert main(["decompose", str(pla), "-o",
                     str(tmp_path / "out.blif"), "--check",
                     "--stats-json", str(stats_path)],
                    stdout=io.StringIO()) == 0
        doc = json.loads(stats_path.read_text())
        stage = next(s for s in doc["stages"]
                     if s["stage"] == "decompose")
        contracts = stage["contracts"]
        # The embedded document is exactly ContractStats.as_dict():
        # nonzero per-contract counters plus the two totals.
        assert set(contracts) == {"checks", "violations",
                                  "total_checks", "total_violations"}
        assert contracts["total_checks"] == sum(
            contracts["checks"].values())
        assert contracts["total_checks"] > 0
        assert contracts["total_violations"] == 0
        assert contracts["violations"] == {}
        assert all(count > 0 for count in contracts["checks"].values())
