"""Tests for the BI-DECOMP command-line interface."""

import io
import os

import pytest

from repro.cli import main

PLA = """\
.i 4
.o 2
.ilb a b c d
.ob f g
.type fd
.p 5
11-- 10
--11 11
00-- 01
1--1 -0
0-0- 01
.e
"""


@pytest.fixture
def pla_path(tmp_path):
    path = tmp_path / "in.pla"
    path.write_text(PLA)
    return str(path)


class TestDecompose:
    def test_writes_blif_to_stdout(self, pla_path):
        out = io.StringIO()
        assert main(["decompose", pla_path], stdout=out) == 0
        text = out.getvalue()
        assert text.startswith(".model bidecomp")
        assert ".outputs f g" in text

    def test_writes_blif_to_file_and_verify_roundtrip(self, pla_path,
                                                      tmp_path):
        blif_path = str(tmp_path / "out.blif")
        assert main(["decompose", pla_path, "-o", blif_path]) == 0
        out = io.StringIO()
        assert main(["verify", pla_path, blif_path], stdout=out) == 0
        assert "OK" in out.getvalue()

    def test_no_exor_flag(self, pla_path, tmp_path):
        blif_path = str(tmp_path / "out.blif")
        assert main(["decompose", pla_path, "-o", blif_path,
                     "--no-exor"]) == 0
        # A BLIF XOR cover row is '10 1' + '01 1' on a fresh line pair;
        # cheaper: re-verify then check stats via the stats command.
        out = io.StringIO()
        assert main(["stats", pla_path, "--no-exor"], stdout=out) == 0
        assert "exors=0" in out.getvalue()


PLA_SMALL = """\
.i 3
.o 1
.ilb p q r
.ob s
.type fd
.p 3
11- 1
--1 1
000 0
.e
"""


class TestDecomposeBatch:
    @pytest.fixture
    def batch_paths(self, tmp_path):
        paths = []
        for name, text in (("one", PLA), ("two", PLA_SMALL)):
            path = tmp_path / ("%s.pla" % name)
            path.write_text(text)
            paths.append(str(path))
        return paths

    def test_jobs_output_is_byte_identical_to_serial(self, batch_paths,
                                                     tmp_path):
        serial_dir = str(tmp_path / "serial")
        parallel_dir = str(tmp_path / "parallel")
        assert main(["decompose"] + batch_paths
                    + ["--output-dir", serial_dir]) == 0
        assert main(["decompose"] + batch_paths
                    + ["--output-dir", parallel_dir, "--jobs", "2"]) == 0
        import os
        for name in ("one.blif", "two.blif"):
            serial = open(os.path.join(serial_dir, name)).read()
            parallel = open(os.path.join(parallel_dir, name)).read()
            assert serial == parallel
            assert serial.startswith(".model bidecomp")

    def test_batch_stats_json_document(self, batch_paths, tmp_path):
        import json
        stats = str(tmp_path / "batch.json")
        cache_dir = str(tmp_path / "cache")
        argv = (["decompose"] + batch_paths
                + ["--output-dir", str(tmp_path / "out"), "--jobs", "2",
                   "--cache-dir", cache_dir, "--stats-json", stats])
        assert main(argv) == 0
        doc = json.load(open(stats))
        assert doc["inputs"] == 2
        assert doc["jobs"] == 2
        assert doc["failures"] == 0
        assert doc["merged_store"].endswith("batch.cache.json")
        assert doc["merged_store_entries"] > 0
        assert doc["config"]["jobs"] == 2
        assert {run["worker"] for run in doc["runs"]} == {0, 1}
        # A warm rerun hits the merged store.
        warm = str(tmp_path / "warm.json")
        assert main(["decompose"] + batch_paths
                    + ["--output-dir", str(tmp_path / "out"),
                       "--jobs", "2", "--cache-dir", cache_dir,
                       "--stats-json", warm]) == 0
        assert json.load(open(warm))["rehydrated_hits"] > 0

    def test_single_output_with_many_inputs_is_an_error(self,
                                                        batch_paths,
                                                        tmp_path):
        assert main(["decompose"] + batch_paths
                    + ["-o", str(tmp_path / "out.blif")]) == 2

    def test_batch_without_output_dir_streams_to_stdout(self,
                                                        batch_paths):
        out = io.StringIO()
        assert main(["decompose"] + batch_paths, stdout=out) == 0
        assert out.getvalue().count(".model bidecomp") == 2


class TestSweepStore:
    def test_sweep_store_requires_cache_dir(self, pla_path):
        assert main(["decompose", pla_path, "--sweep-store",
                     "-o", os.devnull]) == 2

    def test_invocations_share_one_store_across_stems(self, tmp_path):
        import json
        # Same function under two different file stems: a per-stem
        # store could never carry components from one to the other, so
        # any second-pass hit proves the sweep store's stem-agnostic
        # keys.
        first = tmp_path / "one.pla"
        second = tmp_path / "renamed_copy.pla"
        first.write_text(PLA)
        second.write_text(PLA)
        cache_dir = str(tmp_path / "cache")
        stats = str(tmp_path / "s%d.json")
        for index, path in enumerate([first, second]):
            assert main(["decompose", str(path),
                         "-o", str(tmp_path / ("out%d.blif" % index)),
                         "--cache-dir", cache_dir, "--sweep-store",
                         "--stats-json", stats % index]) == 0
        assert os.path.exists(os.path.join(cache_dir,
                                           "sweep.cache.json"))
        cold = json.load(open(stats % 0))
        warm = json.load(open(stats % 1))
        assert cold["config"]["sweep_store"] is True
        assert cold["rehydrated_hits"] == 0
        assert warm["rehydrated_hits"] > 0

    def test_batch_sweep_store_overrides_batch_cache(self, tmp_path):
        import json
        paths = []
        for name, text in (("one", PLA), ("two", PLA_SMALL)):
            path = tmp_path / ("%s.pla" % name)
            path.write_text(text)
            paths.append(str(path))
        cache_dir = str(tmp_path / "cache")
        stats = str(tmp_path / "batch.json")
        assert main(["decompose"] + paths
                    + ["--output-dir", str(tmp_path / "out"),
                       "--jobs", "2", "--cache-dir", cache_dir,
                       "--sweep-store", "--stats-json", stats]) == 0
        doc = json.load(open(stats))
        assert doc["merged_store"].endswith("sweep.cache.json")
        assert doc["config"]["sweep_store"] is True


class TestVerify:
    def test_detects_wrong_netlist(self, pla_path, tmp_path):
        bad = tmp_path / "bad.blif"
        bad.write_text(".model bad\n.inputs a b c d\n.outputs f g\n"
                       ".names a f\n1 1\n.names b g\n1 1\n.end\n")
        out = io.StringIO()
        assert main(["verify", pla_path, str(bad)], stdout=out) == 1
        assert "FAIL" in out.getvalue()

    def test_detects_missing_output(self, pla_path, tmp_path):
        bad = tmp_path / "bad.blif"
        bad.write_text(".model bad\n.inputs a b c d\n.outputs f\n"
                       ".names a f\n1 1\n.end\n")
        out = io.StringIO()
        assert main(["verify", pla_path, str(bad)], stdout=out) == 1
        assert "missing" in out.getvalue()


class TestOtherCommands:
    def test_stats(self, pla_path):
        out = io.StringIO()
        assert main(["stats", pla_path], stdout=out) == 0
        assert "gates=" in out.getvalue()

    def test_testability(self, pla_path):
        out = io.StringIO()
        assert main(["testability", pla_path], stdout=out) == 0
        assert "coverage=100.0%" in out.getvalue()

    def test_map(self, pla_path):
        out = io.StringIO()
        assert main(["map", pla_path], stdout=out) == 0
        assert "cells=" in out.getvalue()

    def test_baseline_sis_and_bds(self, pla_path):
        for flow in ("sis", "bds"):
            out = io.StringIO()
            assert main(["baseline", pla_path, "--flow", flow],
                        stdout=out) == 0
            assert "gates=" in out.getvalue()

    def test_baseline_espresso_minimizer(self, pla_path):
        out = io.StringIO()
        assert main(["baseline", pla_path, "--minimizer", "espresso",
                     "--factor"], stdout=out) == 0

    def test_fsm_command(self, tmp_path):
        kiss = tmp_path / "m.kiss2"
        kiss.write_text(".i 1\n.o 1\n.r A\n0 A A 0\n1 A B 0\n"
                        "0 B A 0\n1 B B 1\n.e\n")
        out = io.StringIO()
        blif_path = str(tmp_path / "m.blif")
        assert main(["fsm", str(kiss), "-o", blif_path],
                    stdout=out) == 0
        assert "states=2" in out.getvalue()
        assert "gates=" in out.getvalue()
        assert ".model fsm" in open(blif_path).read()
        # one-hot + no-DC ablation paths run too.
        out2 = io.StringIO()
        assert main(["fsm", str(kiss), "--encoding", "onehot",
                     "--no-dont-cares"], stdout=out2) == 0

    def test_module_invocation(self, pla_path):
        import subprocess
        import sys
        proc = subprocess.run(
            [sys.executable, "-m", "repro.cli", "stats", pla_path],
            capture_output=True, text=True)
        assert proc.returncode == 0
        assert "gates=" in proc.stdout
