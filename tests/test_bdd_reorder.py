"""Tests for in-place adjacent swap, targeted reordering and sifting."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bdd import (BDD, live_size, move_var_to_level, reorder_to, sift,
                       swap_levels)
from repro.boolfn import from_truth_table

from conftest import brute_force, make_mgr, tt_strategy


class TestSwapLevels:
    @settings(max_examples=50, deadline=None)
    @given(tt_strategy(4), st.integers(min_value=0, max_value=2))
    def test_swap_preserves_semantics(self, table, level):
        mgr = make_mgr(4)
        node = from_truth_table(mgr, [0, 1, 2, 3], table)
        before = brute_force(mgr, node, [0, 1, 2, 3])
        swap_levels(mgr, level)
        assert brute_force(mgr, node, [0, 1, 2, 3]) == before

    def test_swap_updates_order_maps(self):
        mgr = BDD(["a", "b", "c"])
        swap_levels(mgr, 0)
        assert mgr.order() == (1, 0, 2)
        assert mgr.level_of_var("a") == 1
        assert mgr.var_at_level(0) == 1

    def test_double_swap_is_identity_on_order(self):
        mgr = make_mgr(3)
        f = mgr.ite(mgr.var(0), mgr.var(1), mgr.var(2))
        before = brute_force(mgr, f, [0, 1, 2])
        swap_levels(mgr, 1)
        swap_levels(mgr, 1)
        assert mgr.order() == (0, 1, 2)
        assert brute_force(mgr, f, [0, 1, 2]) == before

    def test_swap_out_of_range(self):
        mgr = make_mgr(2)
        with pytest.raises(ValueError):
            swap_levels(mgr, 1)
        with pytest.raises(ValueError):
            swap_levels(mgr, -1)

    def test_new_operations_after_swap_are_consistent(self):
        mgr = BDD(["a", "b"])
        f = mgr.and_(mgr.var("a"), mgr.var("b"))
        swap_levels(mgr, 0)
        g = mgr.and_(mgr.var("a"), mgr.var("b"))
        assert f == g  # canonicities must agree post-swap


class TestReorderTo:
    @settings(max_examples=30, deadline=None)
    @given(tt_strategy(4), st.permutations([0, 1, 2, 3]))
    def test_arbitrary_permutation_preserves_semantics(self, table, order):
        mgr = make_mgr(4)
        node = from_truth_table(mgr, [0, 1, 2, 3], table)
        before = brute_force(mgr, node, [0, 1, 2, 3])
        reorder_to(mgr, order)
        assert mgr.order() == tuple(order)
        assert brute_force(mgr, node, [0, 1, 2, 3]) == before

    def test_rejects_non_permutation(self):
        mgr = make_mgr(3)
        with pytest.raises(ValueError):
            reorder_to(mgr, [0, 0, 1])

    def test_move_var_to_level(self):
        mgr = BDD(["a", "b", "c", "d"])
        move_var_to_level(mgr, "d", 0)
        assert mgr.var_at_level(0) == 3


class TestSifting:
    def test_sift_finds_interleaved_order(self):
        # f = (a0 & b0) | (a1 & b1) | (a2 & b2) is exponential when the
        # a's and b's are separated, linear when interleaved.
        mgr = BDD(["a0", "a1", "a2", "b0", "b1", "b2"])
        f = mgr.false
        for i in range(3):
            f = mgr.or_(f, mgr.and_(mgr.var("a%d" % i),
                                    mgr.var("b%d" % i)))
        bad = live_size(mgr, [f])
        final = sift(mgr, [f])
        assert final < bad
        assert final == live_size(mgr, [f])
        # The optimum for this function is 8 nodes (6 internal + 2).
        assert final == 8

    def test_sift_preserves_semantics(self):
        mgr = BDD(["a0", "a1", "b0", "b1"])
        f = mgr.or_(mgr.and_(mgr.var("a0"), mgr.var("b0")),
                    mgr.xor(mgr.var("a1"), mgr.var("b1")))
        before = brute_force(mgr, f, [0, 1, 2, 3])
        sift(mgr, [f])
        assert brute_force(mgr, f, [0, 1, 2, 3]) == before

    def test_live_size_counts_shared_nodes_once(self):
        mgr = BDD(["a", "b"])
        f = mgr.and_(mgr.var("a"), mgr.var("b"))
        g = mgr.or_(f, mgr.var("a"))  # g shares f's structure
        assert live_size(mgr, [f, f]) == live_size(mgr, [f])
        assert live_size(mgr, [f, g]) <= \
            live_size(mgr, [f]) + live_size(mgr, [g])


class TestCacheInvalidation:
    """Reordering must invalidate every edge-keyed cache.

    ``support_levels`` memoises frozensets of *levels* keyed on packed
    edges; after an in-place swap those levels are stale, so a missed
    clear returns the pre-reorder support (regression: support queries
    on a session-shared manager after reordering).
    """

    def test_reorder_then_support(self):
        mgr = BDD(["a", "b", "c"])
        f = mgr.and_(mgr.var("a"), mgr.var("c"))
        assert mgr.support_names(f) == ("a", "c")  # populate the cache
        reorder_to(mgr, ["c", "b", "a"])
        assert mgr.support_names(f) == ("a", "c")
        assert mgr.support_levels(f) == frozenset({0, 2})

    def test_reorder_then_support_on_session_shared_manager(self):
        from repro.pipeline import Session
        mgr = BDD(["a", "b", "c", "d"])
        with Session(mgr=mgr) as session:
            f = mgr.and_(mgr.var("b"), mgr.var("d"))
            assert mgr.support_names(f) == ("b", "d")
            move_var_to_level(mgr, "d", 0)
            assert session.mgr is mgr
            assert mgr.support_names(f) == ("b", "d")
            assert mgr.support_levels(f) == frozenset(
                {0, mgr.level_of_var("b")})
