"""Tests for the terminal-case gate emitter and the component cache."""

import itertools

import pytest

from repro.bdd import BDD
from repro.boolfn import ISF, from_truth_table, parse
from repro.decomp import ComponentCache, NullCache, find_gate
from repro.network import Netlist, compute_stats, gates as G
from repro.network.extract import node_functions

from conftest import make_mgr


def _setup(n=2):
    mgr = make_mgr(n)
    nl = Netlist(mgr.var_names)
    var_nodes = {v: nl.input_node(mgr.var_name(v)) for v in range(n)}
    return mgr, nl, var_nodes


def _netlist_tt(nl, node, mgr):
    bdds = node_functions(nl, mgr, restrict_to={node})
    return bdds[node]


class TestFindGateExhaustive:
    def test_all_two_variable_intervals(self):
        # Every consistent (must1, must0) mask pair over 2 variables:
        # 3^4 = 81 interval combinations.
        mgr, nl, var_nodes = _setup(2)
        variables = [0, 1]
        for cells in itertools.product((0, 1, None), repeat=4):
            on_tt = sum(1 << i for i, cell in enumerate(cells)
                        if cell == 1)
            off_tt = sum(1 << i for i, cell in enumerate(cells)
                         if cell == 0)
            on = mgr.fn(from_truth_table(mgr, variables, on_tt))
            off = mgr.fn(from_truth_table(mgr, variables, off_tt))
            isf = ISF(on, off)
            csf, node = find_gate(isf, variables, nl, var_nodes)
            assert isf.is_compatible(csf), cells
            # The netlist node must compute exactly the claimed CSF.
            assert _netlist_tt(nl, node, mgr) == csf.node, cells

    def test_single_variable_cases(self):
        mgr, nl, var_nodes = _setup(1)
        a = parse(mgr, "x0")
        for on, off, expected in [
                (a, ~a, a), (~a, a, ~a),
                (a, mgr.fn_false(), None),  # any superset of a works
                (mgr.fn_false(), mgr.fn_false(), None)]:
            csf, node = find_gate(ISF(on, off), [0], nl, var_nodes)
            assert ISF(on, off).is_compatible(csf)
            if expected is not None:
                assert csf == expected

    def test_empty_support_constant(self):
        mgr, nl, var_nodes = _setup(1)
        csf, node = find_gate(ISF(mgr.fn_true(), mgr.fn_false()), [],
                              nl, var_nodes)
        assert csf.is_true()
        assert nl.is_constant(node, 1)

    def test_too_many_variables_rejected(self):
        mgr, nl, var_nodes = _setup(3)
        isf = ISF(mgr.fn_false(), mgr.fn_false())
        with pytest.raises(ValueError):
            find_gate(isf, [0, 1, 2], nl, var_nodes)


class TestFindGateCost:
    def test_prefers_wire_over_gate(self):
        mgr, nl, var_nodes = _setup(2)
        a = parse(mgr, "x0")
        # Interval [x0 & x1, x0 | x1] admits the plain wire x0.
        isf = ISF.from_interval(a & parse(mgr, "x1"),
                                a | parse(mgr, "x1"))
        csf, node = find_gate(isf, [0, 1], nl, var_nodes)
        assert node == var_nodes[0] or node == var_nodes[1]

    def test_prefers_constant_over_everything(self):
        mgr, nl, var_nodes = _setup(2)
        isf = ISF(parse(mgr, "x0 & x1"), mgr.fn_false())
        csf, node = find_gate(isf, [0, 1], nl, var_nodes)
        assert csf.is_true()

    def test_emits_exor_only_when_forced(self):
        mgr, nl, var_nodes = _setup(2)
        f = parse(mgr, "x0 ^ x1")
        csf, node = find_gate(ISF.from_csf(f), [0, 1], nl, var_nodes)
        assert csf == f
        assert nl.types[node] == G.XOR

    def test_negative_literal_costs_one_inverter(self):
        mgr, nl, var_nodes = _setup(2)
        f = ~parse(mgr, "x0")
        csf, node = find_gate(ISF.from_csf(f), [0], nl, var_nodes)
        assert nl.types[node] == G.NOT


class TestComponentCache:
    def test_direct_hit(self):
        mgr = make_mgr(2)
        cache = ComponentCache()
        f = parse(mgr, "x0 & x1")
        cache.insert(f, 42)
        hit = cache.lookup(ISF.from_csf(f), f.support())
        assert hit == (f, 42, False)
        assert cache.hits == 1

    def test_complement_hit(self):
        mgr = make_mgr(2)
        cache = ComponentCache()
        f = parse(mgr, "x0 | x1")
        cache.insert(f, 7)
        isf = ISF.from_csf(~f)
        csf, node, complemented = cache.lookup(isf, f.support())
        assert complemented is True
        assert node == 7
        assert csf == ~f
        assert cache.complement_hits == 1

    def test_interval_hit(self):
        mgr = make_mgr(2)
        cache = ComponentCache()
        f = parse(mgr, "x0 | x1")
        cache.insert(f, 3)
        isf = ISF.from_interval(parse(mgr, "x0 & x1"),
                                parse(mgr, "x0 | x1"))
        hit = cache.lookup(isf, isf.structural_support())
        assert hit is not None and hit[1] == 3

    def test_exact_support_hashing_misses_smaller_support(self):
        # The paper hashes by exact support: a compatible function with
        # a *smaller* support is deliberately not searched for.
        mgr = make_mgr(2)
        cache = ComponentCache()
        cache.insert(parse(mgr, "x0"), 3)  # support {x0}
        isf = ISF.from_interval(parse(mgr, "x0 & x1"),
                                parse(mgr, "x0 | x1"))  # support {x0,x1}
        assert cache.lookup(isf, isf.structural_support()) is None

    def test_miss_on_wrong_support(self):
        mgr = make_mgr(3)
        cache = ComponentCache()
        f = parse(mgr, "x0 & x1")
        cache.insert(f, 1)
        isf = ISF.from_csf(parse(mgr, "x0 & x2"))
        assert cache.lookup(isf, isf.structural_support()) is None

    def test_miss_on_incompatible_function(self):
        mgr = make_mgr(2)
        cache = ComponentCache()
        cache.insert(parse(mgr, "x0 & x1"), 1)
        isf = ISF.from_csf(parse(mgr, "x0 ^ x1"))
        assert cache.lookup(isf, isf.structural_support()) is None
        assert cache.hits == 0

    def test_stats_and_size(self):
        mgr = make_mgr(2)
        cache = ComponentCache()
        cache.insert(parse(mgr, "x0"), 1)
        cache.insert(parse(mgr, "x0 & x1"), 2)
        stats = cache.stats()
        assert stats["insertions"] == 2
        assert stats["size"] == 2

    def test_null_cache_never_hits(self):
        mgr = make_mgr(2)
        cache = NullCache()
        f = parse(mgr, "x0")
        cache.insert(f, 1)
        assert cache.lookup(ISF.from_csf(f), f.support()) is None
        assert cache.size() == 0
