"""Tests for DOT export and structural statistics."""

from repro.bdd import BDD, stats, to_dot


class TestToDot:
    def test_contains_variable_labels_and_edges(self):
        mgr = BDD(["a", "b"])
        f = mgr.and_(mgr.var("a"), mgr.var("b"))
        dot = to_dot(mgr, [f], ["f"])
        assert dot.startswith("digraph bdd {")
        assert 'label="a"' in dot
        assert 'label="b"' in dot
        assert "style=dashed" in dot and "style=solid" in dot
        assert '"f"' in dot
        assert dot.rstrip().endswith("}")

    def test_terminals_rendered_as_boxes(self):
        mgr = BDD(["a"])
        dot = to_dot(mgr, [mgr.var("a")])
        assert 'shape=box,label="0"' in dot
        assert 'shape=box,label="1"' in dot

    def test_default_root_names(self):
        mgr = BDD(["a"])
        dot = to_dot(mgr, [mgr.var("a"), mgr.not_(mgr.var("a"))])
        assert '"f0"' in dot and '"f1"' in dot

    def test_shared_nodes_emitted_once(self):
        mgr = BDD(["a", "b"])
        f = mgr.and_(mgr.var("a"), mgr.var("b"))
        g = mgr.or_(f, mgr.var("b"))
        dot = to_dot(mgr, [f, g])
        # Node f appears exactly once as a declaration.
        assert dot.count("n%d [shape=circle" % f) == 1


class TestStats:
    def test_counts(self):
        mgr = BDD(["a", "b", "c"])
        f = mgr.ite(mgr.var("a"), mgr.var("b"), mgr.var("c"))
        info = stats(mgr, [f])
        assert info["roots"] == 1
        assert info["internal_nodes"] == 3
        assert info["total_nodes"] == 5
        assert info["support_size"] == 3
        # Physical arena: one shared terminal plus the a, b, c variable
        # nodes and the root.  A single slot serves each function and
        # its complement, so this can undercut the semantic count.
        assert info["manager_size"] == 5

    def test_constant_root(self):
        mgr = BDD(["a"])
        info = stats(mgr, [mgr.true])
        assert info["internal_nodes"] == 0
        assert info["support_size"] == 0
