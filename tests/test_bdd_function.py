"""Tests for the operator-overloaded Function handle."""

import pytest

from repro.bdd import BDD, BDDError, Function


@pytest.fixture
def mgr():
    return BDD(["a", "b", "c"])


class TestConstruction:
    def test_fn_vars(self, mgr):
        a, b, c = mgr.fn_vars()
        assert a.support_names() == ("a",)
        assert isinstance(a, Function)

    def test_constants(self, mgr):
        assert mgr.fn_true().is_true()
        assert mgr.fn_false().is_false()
        assert Function.true(mgr) == mgr.fn_true()

    def test_literal(self, mgr):
        lit = Function.literal(mgr, "b", positive=False)
        assert lit(a=0, b=0, c=0)
        assert not lit(a=0, b=1, c=0)


class TestOperators:
    def test_boolean_algebra(self, mgr):
        a, b, c = mgr.fn_vars()
        assert (a & b) | (a & c) == a & (b | c)
        assert ~(a | b) == ~a & ~b
        assert (a ^ b) == (a & ~b) | (~a & b)
        assert (a - b) == (a & ~b)

    def test_mixing_with_python_bools(self, mgr):
        a, _b, _c = mgr.fn_vars()
        assert (a & True) == a
        assert (a & False).is_false()
        assert (a | True).is_true()
        assert (a ^ True) == ~a

    def test_implies_iff_ite(self, mgr):
        a, b, c = mgr.fn_vars()
        assert a.implies(b) == (~a | b)
        assert a.iff(b) == ~(a ^ b)
        assert a.ite(b, c) == (a & b) | (~a & c)

    def test_mixed_managers_rejected(self, mgr):
        other = BDD(["a"])
        with pytest.raises(BDDError):
            _ = mgr.fn_vars()[0] & other.fn_vars()[0]

    def test_invalid_operand_type(self, mgr):
        a = mgr.fn_vars()[0]
        with pytest.raises(TypeError):
            _ = a & "banana"


class TestPredicates:
    def test_truthiness_is_ambiguous(self, mgr):
        a = mgr.fn_vars()[0]
        with pytest.raises(BDDError):
            bool(a)

    def test_equality_with_constants(self, mgr):
        a = mgr.fn_vars()[0]
        assert (a ^ a) == 0
        assert (a | ~a) == 1

    def test_containment_operators(self, mgr):
        a, b, _c = mgr.fn_vars()
        assert (a & b) <= a
        assert a >= (a & b)
        assert not (a <= (a & b))

    def test_hashable_and_stable(self, mgr):
        a, b, _c = mgr.fn_vars()
        seen = {a & b: "ab"}
        assert seen[b & a] == "ab"


class TestQueriesAndTransforms:
    def test_support_and_counts(self, mgr):
        a, b, c = mgr.fn_vars()
        f = (a & b) | c
        assert f.support_names() == ("a", "b", "c")
        assert f.sat_count() == 5
        assert f.node_count() >= 4

    def test_cofactor_restrict_compose(self, mgr):
        a, b, c = mgr.fn_vars()
        f = a.ite(b, c)
        assert f.cofactor("a", 1) == b
        assert f.restrict({"a": 0, "c": 1}).is_true()
        assert f.compose("b", c) == c  # ite(a, c, c) collapses to c

    def test_quantifier_sugar(self, mgr):
        a, b, c = mgr.fn_vars()
        f = (a & b) | c
        assert f.exists("a") == (b | c)
        assert f.forall("a", "b") == c
        assert f.exists(["a", "b"]) == f.exists("a", "b")

    def test_eval_styles(self, mgr):
        a, b, _c = mgr.fn_vars()
        f = a ^ b
        assert f(a=1, b=0, c=0)
        assert f.eval({"a": 1, "b": 1, "c": 0}) is False

    def test_isop_sugar(self, mgr):
        a, b, _c = mgr.fn_vars()
        f = a & b
        cover, cubes = f.isop()
        assert cover == f
        assert len(cubes) == 1
        wide, _cubes = f.isop(upper=a)
        assert f <= wide and wide <= a

    def test_repr_mentions_support(self, mgr):
        a, b, _c = mgr.fn_vars()
        assert "a" in repr(a & b)
        assert repr(mgr.fn_true()) == "Function(1)"
        assert repr(mgr.fn_false()) == "Function(0)"
