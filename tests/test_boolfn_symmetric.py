"""Tests for the totally-symmetric function builders."""

from math import comb

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bdd import BDD, sat_count
from repro.boolfn import (count_ones_bit, exactly, majority, parity,
                          symmetric, threshold, weight_set)

from conftest import make_mgr


def _weight(assignment, n):
    return sum(assignment.get(i, 0) for i in range(n))


class TestSymmetric:
    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.booleans(), min_size=6, max_size=6))
    def test_matches_definition_exhaustively(self, vector):
        n = 5
        mgr = make_mgr(n)
        node = symmetric(mgr, range(n), vector)
        for i in range(1 << n):
            assignment = {k: (i >> k) & 1 for k in range(n)}
            expected = bool(vector[_weight(assignment, n)])
            assert mgr.eval(node, assignment) == expected

    def test_wrong_vector_length_rejected(self):
        mgr = make_mgr(3)
        with pytest.raises(ValueError):
            symmetric(mgr, range(3), [1, 0])

    def test_invariant_under_variable_permutation(self):
        mgr = make_mgr(4)
        vector = [0, 1, 1, 0, 1]
        assert symmetric(mgr, [0, 1, 2, 3], vector) == \
            symmetric(mgr, [3, 1, 0, 2], vector)

    def test_node_count_is_quadratic_not_exponential(self):
        mgr = make_mgr(16)
        node = weight_set(mgr, range(16), {8})
        # The counting lattice has at most sum_{i<=n}(i+1) nodes.
        assert mgr.node_count(node) <= 17 * 18 // 2 + 2

    def test_zero_variables(self):
        mgr = make_mgr(1)
        assert symmetric(mgr, [], [1]) == mgr.true
        assert symmetric(mgr, [], [0]) == mgr.false


class TestNamedFamilies:
    def test_weight_set_count(self):
        mgr = make_mgr(9)
        node = weight_set(mgr, range(9), {3, 4, 5, 6})
        expected = sum(comb(9, k) for k in (3, 4, 5, 6))
        assert sat_count(mgr, node) == expected

    def test_parity_odd_and_even(self):
        mgr = make_mgr(5)
        odd = parity(mgr, range(5), odd=True)
        even = parity(mgr, range(5), odd=False)
        assert mgr.not_(odd) == even
        assert sat_count(mgr, odd) == 16
        # Parity equals the XOR chain.
        chain = mgr.false
        for i in range(5):
            chain = mgr.xor(chain, mgr.var(i))
        assert odd == chain

    def test_threshold_and_exactly(self):
        mgr = make_mgr(6)
        assert sat_count(mgr, threshold(mgr, range(6), 4)) == \
            comb(6, 4) + comb(6, 5) + comb(6, 6)
        assert sat_count(mgr, exactly(mgr, range(6), 2)) == comb(6, 2)
        # threshold(k) - threshold(k+1) == exactly(k)
        diff = mgr.diff(threshold(mgr, range(6), 2),
                        threshold(mgr, range(6), 3))
        assert diff == exactly(mgr, range(6), 2)

    def test_majority(self):
        mgr = make_mgr(3)
        node = majority(mgr, range(3))
        assert mgr.eval(node, {0: 1, 1: 1, 2: 0})
        assert not mgr.eval(node, {0: 1, 1: 0, 2: 0})

    def test_count_ones_bits_recompose_weight(self):
        n = 7
        mgr = make_mgr(n)
        bits = [count_ones_bit(mgr, range(n), b) for b in range(3)]
        for i in range(1 << n):
            assignment = {k: (i >> k) & 1 for k in range(n)}
            weight = _weight(assignment, n)
            got = sum((1 << b) for b in range(3)
                      if mgr.eval(bits[b], assignment))
            assert got == weight

    def test_subset_of_variables(self):
        mgr = make_mgr(5)
        node = threshold(mgr, [1, 3], 2)
        assert node == mgr.and_(mgr.var(1), mgr.var(3))
