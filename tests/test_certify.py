"""Tests for certificate traces and the offline certifier.

Covers the io.cert format helpers, the engine-side tracer, the
pipeline/CLI wiring (``--certificates`` / ``--certify`` / ``repro
certify``), determinism across the parallel executor, and — most
importantly — that the independent certifier accepts fresh artifacts
and rejects tampered ones with counterexamples.
"""

import copy
import io
import json

import pytest

from repro.analysis import certify, certify_file
from repro.bdd import BDD
from repro.bench import get as get_bench
from repro.boolfn import parse
from repro.cli import main
from repro.io import (CertificateError, cert_path_for, load_cert, load_pla,
                      named_cover, read_text, rebuild_cover, save_cert,
                      validate_cover, write_pla)
from repro.pipeline import (Pipeline, PipelineConfig, PipelineInput,
                            Session, run_batch_parallel)

BENCHMARKS = ("rd53", "xor5", "misex1")


def _write_bench_pla(tmp_path, name):
    mgr, specs = get_bench(name).build()
    path = tmp_path / (name + ".pla")
    write_pla(specs, list(mgr.var_names), path=str(path))
    return path


def _decompose_with_cert(tmp_path, name, **config_kwargs):
    """Decompose one benchmark with certificates; returns paths + run."""
    pla_path = _write_bench_pla(tmp_path, name)
    blif_path = tmp_path / (name + ".blif")
    config = PipelineConfig(emit_certificates=True, **config_kwargs)
    with Session(config=config) as session:
        run = Pipeline.standard().run(
            session,
            PipelineInput(path=str(pla_path), emit_path=str(blif_path)))
        events = session.events
    return pla_path, blif_path, run, events


class TestCoverHelpers:
    def test_named_cover_round_trips(self):
        mgr = BDD(["a", "b", "c"])
        fn = parse(mgr, "a & b | ~c")
        cover = named_cover(fn)
        assert validate_cover(cover) is cover
        rebuilt = rebuild_cover(mgr, cover)
        assert rebuilt.node == fn.node

    def test_constants(self):
        mgr = BDD(["a"])
        assert named_cover(mgr.fn_false()) == []
        assert named_cover(mgr.fn_true()) == [{}]
        assert rebuild_cover(mgr, []).is_false()
        assert rebuild_cover(mgr, [{}]).is_true()

    def test_rebuild_rejects_unknown_variable(self):
        mgr = BDD(["a"])
        with pytest.raises(CertificateError):
            rebuild_cover(mgr, [{"zz": 1}])

    def test_validate_rejects_bad_shapes(self):
        for bad in ({"a": 1}, [["a"]], [{"a": 2}], [{3: 1}]):
            with pytest.raises(CertificateError):
                validate_cover(bad)

    def test_cert_path_for(self):
        assert cert_path_for("out/rd53.blif") == "out/rd53.cert.json"
        assert cert_path_for("noext") == "noext.cert.json"


class TestCertificateEmission:
    def test_cert_written_beside_blif(self, tmp_path):
        _pla, blif_path, run, events = _decompose_with_cert(tmp_path,
                                                            "rd53")
        cert_path = cert_path_for(str(blif_path))
        assert run.certificate_path == cert_path
        doc = load_cert(cert_path)
        assert doc["format"] == "repro-decomposition-certificate"
        assert doc["version"] == 1
        assert doc["label"] == "rd53"
        assert set(doc["outputs"]) == set(run.specs)
        emitted = events.named("certificate_emitted")
        assert emitted and emitted[0]["steps"] == len(doc["steps"])
        assert run.stats_json()["certificate"] == cert_path

    def test_steps_are_dense_and_topological(self, tmp_path):
        _pla, blif_path, _run, _events = _decompose_with_cert(tmp_path,
                                                              "rd53")
        doc = load_cert(cert_path_for(str(blif_path)))
        from repro.io.cert import LEAF_THEOREMS, THEOREM_GATES
        for index, step in enumerate(doc["steps"]):
            assert step["id"] == index
            assert step["gate"] == THEOREM_GATES[step["theorem"]]
            assert all(child < index for child in step["children"])
            if step["theorem"] in LEAF_THEOREMS:
                assert step["children"] == []
            else:
                assert len(step["children"]) == 2

    def test_no_cert_without_flag(self, tmp_path):
        pla_path = _write_bench_pla(tmp_path, "xor5")
        blif_path = tmp_path / "xor5.blif"
        with Session(config=PipelineConfig()) as session:
            run = Pipeline.standard().run(
                session,
                PipelineInput(path=str(pla_path),
                              emit_path=str(blif_path)))
        assert run.certificate_path is None
        assert not (tmp_path / "xor5.cert.json").exists()

    def test_cert_under_checked_engine(self, tmp_path):
        # --check swaps in CheckedDecompositionEngine; the tracer must
        # ride along unchanged.
        pla, blif, run, _events = _decompose_with_cert(
            tmp_path, "xor5", check_contracts=True)
        report = certify_file(str(pla), str(blif), run.certificate_path)
        assert report.ok

    def test_emit_certificates_in_config_dict(self):
        config = PipelineConfig(emit_certificates=True)
        assert config.as_dict()["emit_certificates"] is True
        assert PipelineConfig().as_dict()["emit_certificates"] is False


class TestCertifierAccepts:
    @pytest.mark.parametrize("name", BENCHMARKS)
    def test_fresh_certificates_accepted(self, tmp_path, name):
        pla, blif, run, _events = _decompose_with_cert(tmp_path, name)
        report = certify_file(str(pla), str(blif), run.certificate_path)
        assert report.ok, report.format_text()
        assert report.steps_checked == len(
            load_cert(run.certificate_path)["steps"])
        assert report.outputs_checked > 0
        assert report.checks > report.steps_checked
        assert "CERTIFIED" in report.format_text()

    def test_report_as_dict(self, tmp_path):
        pla, blif, run, _events = _decompose_with_cert(tmp_path, "rd53")
        doc = certify_file(str(pla), str(blif),
                           run.certificate_path).as_dict()
        assert doc["ok"] is True
        assert doc["failures"] == []
        assert sum(doc["theorems"].values()) == doc["steps_checked"]


class _Tampered:
    """Fixture helper: one decomposed rd53 plus mutation utilities."""

    def __init__(self, tmp_path):
        self.pla, self.blif, self.run, _events = _decompose_with_cert(
            tmp_path, "rd53")
        self.cert = self.run.certificate_path
        self.doc = load_cert(self.cert)
        self.tmp_path = tmp_path

    def certify_doc(self, doc):
        path = str(self.tmp_path / "tampered.cert.json")
        save_cert(path, doc)
        return certify_file(str(self.pla), str(self.blif), path)


@pytest.fixture
def tampered(tmp_path):
    return _Tampered(tmp_path)


class TestCertifierRejects:
    def test_single_bit_cover_mutation(self, tampered):
        doc = copy.deepcopy(tampered.doc)
        for step in doc["steps"]:
            if step["f"] and step["f"][0]:
                name = sorted(step["f"][0])[0]
                step["f"][0][name] = 1 - step["f"][0][name]
                break
        report = tampered.certify_doc(doc)
        assert not report.ok
        checks = {failure.check for failure in report.failures}
        assert checks & {"component-interval", "composition",
                         "spec-interval", "blif-output"}
        assert any(failure.counterexample for failure in report.failures)

    def test_gate_swap(self, tampered):
        doc = copy.deepcopy(tampered.doc)
        step = next(s for s in doc["steps"] if s["theorem"] == "thm1-or")
        step["gate"] = "AND"
        report = tampered.certify_doc(doc)
        assert not report.ok
        assert any(failure.check == "step-structure"
                   and failure.step == step["id"]
                   for failure in report.failures)

    def test_coordinated_theorem_and_gate_swap(self, tampered):
        # Swapping both theorem and gate keeps the structure check
        # quiet; the composition (and the re-proved residue) must
        # catch it with a counterexample.
        doc = copy.deepcopy(tampered.doc)
        step = next(s for s in doc["steps"] if s["theorem"] == "thm1-or")
        step["theorem"] = "thm1-and-dual"
        step["gate"] = "AND"
        report = tampered.certify_doc(doc)
        assert not report.ok
        assert any(failure.counterexample for failure in report.failures)

    def test_inconsistent_interval(self, tampered):
        doc = copy.deepcopy(tampered.doc)
        step = doc["steps"][0]
        step["r"] = list(step["q"])  # Q & R == Q != 0
        report = tampered.certify_doc(doc)
        assert any(failure.check == "interval-consistent"
                   and failure.counterexample
                   for failure in report.failures)

    def test_unknown_variable(self, tampered):
        doc = copy.deepcopy(tampered.doc)
        doc["steps"][0]["f"] = [{"not_a_var": 1}]
        report = tampered.certify_doc(doc)
        assert any(failure.check == "cover"
                   for failure in report.failures)

    def test_missing_output_root(self, tampered):
        doc = copy.deepcopy(tampered.doc)
        name = sorted(doc["outputs"])[0]
        del doc["outputs"][name]
        report = tampered.certify_doc(doc)
        assert any(failure.check == "output-root"
                   and failure.output == name
                   for failure in report.failures)

    def test_unknown_output_claimed(self, tampered):
        doc = copy.deepcopy(tampered.doc)
        doc["outputs"]["ghost"] = {"step": 0, "output": "ghost"}
        report = tampered.certify_doc(doc)
        assert any(failure.check == "output-root"
                   and failure.output == "ghost"
                   for failure in report.failures)

    def test_blif_mismatch_via_api(self, tampered):
        _data, mgr, specs = load_pla(str(tampered.pla))
        report = certify(tampered.doc, mgr, specs, blif_outputs={})
        assert any(failure.check == "blif-output"
                   for failure in report.failures)

    def test_stale_certificate_against_other_spec(self, tampered):
        other_pla = _write_bench_pla(tampered.tmp_path, "misex1")
        report = certify_file(str(other_pla), str(tampered.blif),
                              tampered.cert)
        assert not report.ok

    def test_newer_version_rejected_at_load(self, tampered):
        doc = copy.deepcopy(tampered.doc)
        doc["version"] = 99
        path = str(tampered.tmp_path / "v99.cert.json")
        save_cert(path, doc)
        with pytest.raises(CertificateError):
            load_cert(path)

    def test_corrupt_file_rejected(self, tmp_path):
        path = tmp_path / "bad.cert.json"
        path.write_text("{not json")
        with pytest.raises(CertificateError):
            load_cert(str(path))
        with pytest.raises(CertificateError):
            load_cert(str(tmp_path / "absent.cert.json"))


class TestParallelDeterminism:
    def test_jobs1_and_jobs2_certificates_identical(self, tmp_path):
        paths = [_write_bench_pla(tmp_path, name)
                 for name in ("rd53", "xor5")]
        outs = {}
        for jobs in (1, 2):
            out_dir = tmp_path / ("out%d" % jobs)
            out_dir.mkdir()
            sources = [PipelineInput(path=str(p),
                                     emit_path=str(out_dir / (p.stem
                                                              + ".blif")))
                       for p in paths]
            config = PipelineConfig(emit_certificates=True)
            result = run_batch_parallel(sources, config=config, jobs=jobs)
            assert not result.failures
            assert result.report()["certificates"] == len(paths)
            outs[jobs] = out_dir
        for p in paths:
            name = p.stem
            cert1 = read_text(str(outs[1] / (name + ".cert.json")))
            cert2 = read_text(str(outs[2] / (name + ".cert.json")))
            assert cert1 == cert2
            assert (read_text(str(outs[1] / (name + ".blif")))
                    == read_text(str(outs[2] / (name + ".blif"))))

    def test_worker_certificates_certify_in_parent(self, tmp_path):
        pla = _write_bench_pla(tmp_path, "xor5")
        (tmp_path / "par").mkdir()
        blif = tmp_path / "par" / "xor5.blif"
        result = run_batch_parallel(
            [PipelineInput(path=str(pla), emit_path=str(blif))],
            config=PipelineConfig(emit_certificates=True), jobs=2)
        run = result[0]
        assert run.certificate_path
        assert run.stats_json()["certificate"] == run.certificate_path
        assert certify_file(str(pla), str(blif),
                            run.certificate_path).ok


class TestCertifyCLI:
    def _emit(self, tmp_path, name="rd53", extra=()):
        pla = _write_bench_pla(tmp_path, name)
        blif = tmp_path / (name + ".blif")
        rc = main(["decompose", str(pla), "-o", str(blif),
                   "--certificates"] + list(extra), stdout=io.StringIO())
        assert rc == 0
        return pla, blif, cert_path_for(str(blif))

    def test_certify_subcommand_accepts(self, tmp_path):
        pla, blif, cert = self._emit(tmp_path)
        out = io.StringIO()
        assert main(["certify", str(pla), str(blif), cert],
                    stdout=out) == 0
        assert "CERTIFIED" in out.getvalue()

    def test_certify_subcommand_json_report(self, tmp_path):
        pla, blif, cert = self._emit(tmp_path, "xor5")
        report_path = tmp_path / "report.json"
        assert main(["certify", str(pla), str(blif), cert,
                     "--json", str(report_path)],
                    stdout=io.StringIO()) == 0
        doc = json.loads(report_path.read_text())
        assert doc["ok"] is True

    def test_certify_subcommand_rejects_mutation(self, tmp_path):
        pla, blif, cert = self._emit(tmp_path)
        doc = load_cert(cert)
        for step in doc["steps"]:
            if step["f"] and step["f"][0]:
                name = sorted(step["f"][0])[0]
                step["f"][0][name] = 1 - step["f"][0][name]
                break
        save_cert(cert, doc)
        out = io.StringIO()
        assert main(["certify", str(pla), str(blif), cert],
                    stdout=out) == 1
        assert "REJECT" in out.getvalue()

    def test_certify_subcommand_unusable_file(self, tmp_path):
        pla, blif, _cert = self._emit(tmp_path, "xor5")
        bad = tmp_path / "bad.cert.json"
        bad.write_text("{}")
        assert main(["certify", str(pla), str(blif), str(bad)],
                    stdout=io.StringIO()) == 1

    def test_decompose_certify_round_trip(self, tmp_path):
        pla = _write_bench_pla(tmp_path, "rd53")
        blif = tmp_path / "rd53.blif"
        stats = tmp_path / "stats.json"
        rc = main(["decompose", str(pla), "-o", str(blif), "--certify",
                   "--stats-json", str(stats)], stdout=io.StringIO())
        assert rc == 0
        doc = json.loads(stats.read_text())
        assert doc["certify"] == {"emitted": 1, "checked": 1,
                                  "accepted": 1, "rejected": 0}
        assert doc["certificate"] == cert_path_for(str(blif))
        assert doc["config"]["emit_certificates"] is True

    def test_decompose_certify_needs_file_output(self, tmp_path):
        pla = _write_bench_pla(tmp_path, "xor5")
        assert main(["decompose", str(pla), "--certify"],
                    stdout=io.StringIO()) == 2
        assert main(["decompose", str(pla), str(pla), "--certify"],
                    stdout=io.StringIO()) == 2

    def test_batch_certify_counts_and_exit(self, tmp_path):
        plas = [str(_write_bench_pla(tmp_path, name))
                for name in ("rd53", "xor5")]
        out_dir = tmp_path / "out"
        stats = tmp_path / "batch.json"
        rc = main(["decompose"] + plas + ["--output-dir", str(out_dir),
                   "--certify", "--jobs", "2",
                   "--stats-json", str(stats)], stdout=io.StringIO())
        assert rc == 0
        doc = json.loads(stats.read_text())
        assert doc["certify"] == {"emitted": 2, "checked": 2,
                                  "accepted": 2, "rejected": 0}

    def test_certified_event_published(self, tmp_path):
        pla, blif, run, _ = _decompose_with_cert(tmp_path, "xor5")
        # The CLI path publishes certified/certify_failed; exercise the
        # helper directly with a recording session bus.
        from repro.cli import _certify_one
        from repro.pipeline import EventBus
        bus = EventBus()
        assert _certify_one(str(pla), str(blif), run.certificate_path,
                            events=bus)
        assert bus.named("certified")
        doc = load_cert(run.certificate_path)
        doc["steps"][0]["gate"] = "XOR"
        save_cert(run.certificate_path, doc)
        assert not _certify_one(str(pla), str(blif),
                                run.certificate_path, events=bus)
        assert bus.named("certify_failed")
