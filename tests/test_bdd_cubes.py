"""Tests for satisfy-counting, cube selection and cube enumeration."""

import pytest
from hypothesis import given, settings

from repro.bdd import (BDD, FALSE, TRUE, cube_to_bdd, iter_cubes,
                       iter_minterms, pick_cube, pick_minterm, sat_count)
from repro.boolfn import from_truth_table

from conftest import make_mgr, tt_strategy


class TestSatCount:
    @settings(max_examples=60, deadline=None)
    @given(tt_strategy(4))
    def test_matches_popcount(self, table):
        mgr = make_mgr(4)
        f = from_truth_table(mgr, [0, 1, 2, 3], table)
        assert sat_count(mgr, f) == bin(table).count("1")

    def test_constants(self):
        mgr = make_mgr(3)
        assert sat_count(mgr, FALSE) == 0
        assert sat_count(mgr, TRUE) == 8

    def test_wider_space(self):
        mgr = make_mgr(2)
        f = mgr.var(0)
        assert sat_count(mgr, f) == 2
        assert sat_count(mgr, f, num_vars=5) == 16

    def test_rejects_truncated_space(self):
        mgr = make_mgr(3)
        with pytest.raises(ValueError):
            sat_count(mgr, mgr.var(0), num_vars=2)

    def test_count_correct_after_adding_variable(self):
        mgr = make_mgr(2)
        f = mgr.and_(mgr.var(0), mgr.var(1))
        assert sat_count(mgr, f) == 1
        mgr.add_var("extra")
        assert sat_count(mgr, f) == 2


class TestPickCube:
    def test_unsat_returns_none(self):
        mgr = make_mgr(2)
        assert pick_cube(mgr, FALSE) is None
        assert pick_minterm(mgr, FALSE) is None

    def test_cube_satisfies_function(self):
        mgr = make_mgr(4)
        f = mgr.or_(mgr.and_(mgr.var(0), mgr.not_(mgr.var(1))),
                    mgr.and_(mgr.var(2), mgr.var(3)))
        cube = pick_cube(mgr, f)
        assert cube_to_bdd(mgr, cube) != FALSE
        # The cube must be contained in f.
        assert mgr.diff(cube_to_bdd(mgr, cube), f) == FALSE

    def test_pick_is_deterministic(self):
        mgr = make_mgr(4)
        f = mgr.xor(mgr.var(0), mgr.var(2))
        assert pick_cube(mgr, f) == pick_cube(mgr, f)

    def test_minterm_covers_all_requested_vars(self):
        mgr = make_mgr(4)
        f = mgr.var(1)
        minterm = pick_minterm(mgr, f)
        assert set(minterm) == {0, 1, 2, 3}
        assert minterm[1] == 1

    def test_tautology_cube_is_empty(self):
        mgr = make_mgr(2)
        assert pick_cube(mgr, TRUE) == {}


class TestCubeToBdd:
    def test_empty_cube_is_true(self):
        mgr = make_mgr(2)
        assert cube_to_bdd(mgr, {}) == TRUE

    def test_literal_polarities(self):
        mgr = make_mgr(3)
        node = cube_to_bdd(mgr, {0: 1, 2: 0})
        assert node == mgr.and_(mgr.var(0), mgr.not_(mgr.var(2)))


class TestIteration:
    @settings(max_examples=40, deadline=None)
    @given(tt_strategy(4))
    def test_cubes_are_disjoint_and_cover(self, table):
        mgr = make_mgr(4)
        f = from_truth_table(mgr, [0, 1, 2, 3], table)
        union = FALSE
        for cube in iter_cubes(mgr, f):
            node = cube_to_bdd(mgr, cube)
            assert mgr.and_(union, node) == FALSE, "cubes overlap"
            union = mgr.or_(union, node)
        assert union == f

    @settings(max_examples=30, deadline=None)
    @given(tt_strategy(4))
    def test_minterms_enumerate_exactly(self, table):
        mgr = make_mgr(4)
        f = from_truth_table(mgr, [0, 1, 2, 3], table)
        minterms = list(iter_minterms(mgr, f))
        assert len(minterms) == bin(table).count("1")
        for minterm in minterms:
            assert mgr.eval(f, minterm) is True

    def test_iterating_false_yields_nothing(self):
        mgr = make_mgr(2)
        assert list(iter_cubes(mgr, FALSE)) == []
        assert list(iter_minterms(mgr, FALSE)) == []
