"""Tests for bit-parallel netlist simulation."""

import random

import pytest

from repro.network import (Netlist, exhaustive_patterns, gates as G,
                           random_patterns, simulate, simulate_outputs,
                           simulate_single, simulate_with_faults)


def _sample_netlist():
    nl = Netlist(["a", "b", "c"])
    a, b, c = nl.inputs
    x = nl.add_xor(a, b)
    y = nl.add_and(x, c)
    z = nl.add_or(y, nl.add_not(a))
    nl.set_output("y", y)
    nl.set_output("z", z)
    return nl


def _oracle(a, b, c):
    x = a ^ b
    y = x & c
    z = y | (1 - a)
    return y, z


class TestSingle:
    @pytest.mark.parametrize("i", range(8))
    def test_single_matches_oracle(self, i):
        nl = _sample_netlist()
        a, b, c = i & 1, (i >> 1) & 1, (i >> 2) & 1
        out = simulate_single(nl, {"a": a, "b": b, "c": c})
        want_y, want_z = _oracle(a, b, c)
        assert out == {"y": want_y, "z": want_z}


class TestPacked:
    def test_exhaustive_patterns_cover_all_assignments(self):
        inputs, width = exhaustive_patterns(["a", "b", "c"])
        assert width == 8
        seen = set()
        for i in range(8):
            seen.add(tuple((inputs[name] >> i) & 1 for name in "abc"))
        assert len(seen) == 8

    def test_exhaustive_refuses_huge_spaces(self):
        with pytest.raises(ValueError):
            exhaustive_patterns(["x%d" % i for i in range(25)])

    def test_packed_equals_serial(self):
        nl = _sample_netlist()
        inputs, width = exhaustive_patterns(["a", "b", "c"])
        packed = simulate_outputs(nl, inputs, width)
        for i in range(width):
            a, b, c = ((inputs["a"] >> i) & 1, (inputs["b"] >> i) & 1,
                       (inputs["c"] >> i) & 1)
            want_y, want_z = _oracle(a, b, c)
            assert (packed["y"] >> i) & 1 == want_y
            assert (packed["z"] >> i) & 1 == want_z

    def test_constants_and_not_respect_mask(self):
        nl = Netlist(["a"])
        nl.set_output("k1", nl.constant(1))
        nl.set_output("na", nl.add_not(nl.inputs[0]))
        out = simulate_outputs(nl, {"a": 0b0101}, width=4)
        assert out["k1"] == 0b1111
        assert out["na"] == 0b1010

    def test_random_patterns_width(self):
        rng = random.Random(7)
        inputs, width = random_patterns(["a", "b"], 12, rng)
        assert width == 12
        assert inputs["a"] < (1 << 12)


class TestFaultInjection:
    def test_stuck_at_overrides_node(self):
        nl = _sample_netlist()
        x_node = 3  # first gate created: xor(a, b)
        assert nl.types[x_node] == G.XOR
        inputs, width = exhaustive_patterns(["a", "b", "c"])
        faulty = simulate_with_faults(nl, inputs, width, {x_node: 1})
        # With x stuck at 1, y = c.
        y_node = nl.output_node("y")
        assert faulty[y_node] == inputs["c"]

    def test_fault_on_input(self):
        nl = _sample_netlist()
        a_node = nl.input_node("a")
        inputs, width = exhaustive_patterns(["a", "b", "c"])
        faulty = simulate_with_faults(nl, inputs, width, {a_node: 0})
        z_node = nl.output_node("z")
        # a stuck at 0: z = (b & c) | 1 = all ones.
        assert faulty[z_node] == (1 << width) - 1

    def test_no_faults_equals_plain_simulation(self):
        nl = _sample_netlist()
        inputs, width = exhaustive_patterns(["a", "b", "c"])
        assert simulate(nl, inputs, width) == \
            simulate_with_faults(nl, inputs, width, {})
