"""Tests for netlist construction: folding, hashing, queries."""

import pytest

from repro.network import Netlist, gates as G
from repro.network.simulate import simulate_single


@pytest.fixture
def nl():
    return Netlist(["a", "b"])


class TestInputs:
    def test_inputs_in_order(self, nl):
        assert [nl.names[n] for n in nl.inputs] == ["a", "b"]
        assert nl.input_node("b") == nl.inputs[1]

    def test_duplicate_input_rejected(self, nl):
        with pytest.raises(ValueError):
            nl.add_input("a")

    def test_constants_are_unique(self, nl):
        assert nl.constant(0) == nl.constant(0)
        assert nl.constant(1) != nl.constant(0)
        assert nl.is_constant(nl.constant(1), 1)
        assert not nl.is_constant(nl.inputs[0])


class TestStructuralHashing:
    def test_identical_gates_shared(self, nl):
        a, b = nl.inputs
        assert nl.add_and(a, b) == nl.add_and(a, b)

    def test_commutative_canonicalisation(self, nl):
        a, b = nl.inputs
        assert nl.add_and(a, b) == nl.add_and(b, a)
        assert nl.add_xor(a, b) == nl.add_xor(b, a)

    def test_different_types_not_shared(self, nl):
        a, b = nl.inputs
        assert nl.add_and(a, b) != nl.add_or(a, b)


class TestConstantFolding:
    def test_and_or_with_constants(self, nl):
        a = nl.inputs[0]
        one, zero = nl.constant(1), nl.constant(0)
        assert nl.add_and(a, zero) == zero
        assert nl.add_and(a, one) == a
        assert nl.add_or(a, one) == one
        assert nl.add_or(a, zero) == a
        assert nl.add_and(zero, a) == zero  # constant first

    def test_xor_with_constants(self, nl):
        a = nl.inputs[0]
        assert nl.add_xor(a, nl.constant(0)) == a
        assert nl.add_xor(a, nl.constant(1)) == nl.add_not(a)

    def test_nand_nor_xnor_with_constants(self, nl):
        a = nl.inputs[0]
        one, zero = nl.constant(1), nl.constant(0)
        assert nl.add_gate(G.NAND, a, zero) == one
        assert nl.add_gate(G.NAND, a, one) == nl.add_not(a)
        assert nl.add_gate(G.NOR, a, one) == zero
        assert nl.add_gate(G.NOR, a, zero) == nl.add_not(a)
        assert nl.add_gate(G.XNOR, a, one) == a
        assert nl.add_gate(G.XNOR, a, zero) == nl.add_not(a)

    def test_both_constants(self, nl):
        one, zero = nl.constant(1), nl.constant(0)
        assert nl.add_and(one, zero) == zero
        assert nl.add_gate(G.XNOR, zero, zero) == one


class TestIdempotenceAndComplement:
    def test_same_operand(self, nl):
        a = nl.inputs[0]
        assert nl.add_and(a, a) == a
        assert nl.add_or(a, a) == a
        assert nl.add_xor(a, a) == nl.constant(0)
        assert nl.add_gate(G.XNOR, a, a) == nl.constant(1)
        assert nl.add_gate(G.NAND, a, a) == nl.add_not(a)
        assert nl.add_gate(G.NOR, a, a) == nl.add_not(a)

    def test_complement_pairs(self, nl):
        a = nl.inputs[0]
        na = nl.add_not(a)
        assert nl.add_and(a, na) == nl.constant(0)
        assert nl.add_or(a, na) == nl.constant(1)
        assert nl.add_xor(a, na) == nl.constant(1)
        assert nl.add_gate(G.XNOR, a, na) == nl.constant(0)
        assert nl.add_gate(G.NAND, a, na) == nl.constant(1)
        assert nl.add_gate(G.NOR, a, na) == nl.constant(0)

    def test_double_negation(self, nl):
        a = nl.inputs[0]
        assert nl.add_not(nl.add_not(a)) == a

    def test_not_of_constants(self, nl):
        assert nl.add_not(nl.constant(0)) == nl.constant(1)
        assert nl.add_not(nl.constant(1)) == nl.constant(0)


class TestMux:
    def test_mux_semantics(self):
        nl = Netlist(["s", "h", "l"])
        s, h, l = nl.inputs
        nl.set_output("y", nl.add_mux(s, h, l))
        assert simulate_single(nl, {"s": 1, "h": 1, "l": 0})["y"] == 1
        assert simulate_single(nl, {"s": 0, "h": 1, "l": 0})["y"] == 0
        assert simulate_single(nl, {"s": 0, "h": 0, "l": 1})["y"] == 1


class TestQueries:
    def test_outputs_and_lookup(self, nl):
        a, b = nl.inputs
        g = nl.add_and(a, b)
        nl.set_output("y", g)
        assert nl.output_node("y") == g
        with pytest.raises(KeyError):
            nl.output_node("zz")

    def test_fanout_counts(self, nl):
        a, b = nl.inputs
        g = nl.add_and(a, b)
        nl.add_or(g, a)
        counts = nl.fanout_counts()
        assert counts[g] == 1
        assert counts[a] == 2

    def test_reachable_excludes_dead_logic(self, nl):
        a, b = nl.inputs
        live = nl.add_and(a, b)
        dead = nl.add_xor(a, b)
        nl.set_output("y", live)
        reachable = nl.reachable_from_outputs()
        assert live in reachable
        assert dead not in reachable

    def test_ids_are_topological(self, nl):
        a, b = nl.inputs
        g1 = nl.add_and(a, b)
        g2 = nl.add_or(g1, a)
        assert g1 < g2
        for node in range(nl.num_nodes()):
            assert all(f < node for f in nl.fanins[node])

    def test_invalid_gate_type(self, nl):
        with pytest.raises(ValueError):
            nl.add_gate("MAJ3", nl.inputs[0], nl.inputs[1])

    def test_repr(self, nl):
        assert "inputs=2" in repr(nl)
