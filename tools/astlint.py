#!/usr/bin/env python
"""Repo AST lint: architectural rules the test suite can't see.

Six rules, each guarding a seam the session/pipeline refactor and the
static-analysis layer rely on (docs/ANALYSIS.md has the rationale):

``manager-seam``
    BDD managers must enter the system through
    ``Session.adopt_manager`` (or be built by the designated factory
    layers: ``repro.bdd`` itself, the file readers in ``repro.io``, the
    benchmark builders in ``repro.bench`` and the FSM encoder in
    ``repro.fsm``).  Any other ``BDD(...)`` construction in ``src/repro``
    creates an unmanaged manager that dodges the session's growth hook
    and resource budgets — and risks the cross-manager BDD operations
    the contract checker exists to catch.  This covers the parallel
    worker entrypoint too: ``repro.pipeline.parallel`` is deliberately
    *not* on the allowed list, so workers can only obtain managers the
    way every session does (``stage_build_isfs`` -> ``pla.make_manager``
    -> ``Session.adopt_manager``).

``process-boundary``
    The multi-process batch executor
    (``src/repro/pipeline/parallel.py``) ships data between parent and
    workers.  Live BDD objects — nodes, ``Function``s, ``ISF``s — are
    bound to one manager in one process and must never cross; only the
    manager-independent store format of ``repro.decomp.cache_store``
    (support names + ISOP cover dicts) and sanitized primitive payloads
    may.  Enforced structurally: boundary modules may not import from
    ``repro.bdd`` or ``repro.boolfn`` at all.

``certifier-independence``
    The offline certificate checker
    (``src/repro/analysis/certify.py``) exists to audit the engine
    from outside: its verdicts are only worth something if it cannot
    share code — and therefore bugs — with what it audits.  Among
    ``repro`` packages it may import only the neutral layers
    (``repro.bdd``, ``repro.boolfn``, ``repro.io``, ``repro.network``);
    any import from ``repro.decomp`` or ``repro.pipeline`` (or any
    other repro module off the allowlist) is a finding.

``node-encoding``
    The BDD core stores nodes in flat parallel arrays and denotes
    functions by packed complement edges ``(index << 1) | bit``.  That
    encoding is private to ``repro.bdd``: no other ``src/repro`` module
    may read the manager-private arrays (``_lo``/``_hi``/``_level``/
    ``_unique``) or perform complement-bit arithmetic (XOR with the
    literal ``1``, the fingerprint of in-place edge negation).
    Everything else must go through the public handle API
    (``mgr.low``/``mgr.high``/``mgr.level``/``mgr.not_`` and
    ``Function``), so the encoding can change again without a
    repo-wide audit.

``bare-assert``
    No bare ``assert`` statements in ``src/repro`` (outside doctests):
    ``python -O`` strips them silently, so invariants guarded that way
    vanish in optimised runs.  Use the typed exceptions
    (``DecompositionError`` and friends) instead.

``stage-registry``
    Every pipeline stage name spelled as a literal — in a
    ``("name", stage_fn)`` composition tuple or a
    ``session.stage("name")`` call — must be registered in
    ``repro.pipeline.config.STAGE_NAMES``, so reports and event
    consumers can rely on a closed vocabulary.

Run as ``python tools/astlint.py [paths...]`` (defaults to ``src/repro``
and ``tools``); exits 1 when any finding is reported.  Stdlib only.
"""

import ast
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Path prefixes (relative to the repo root, ``/``-separated) where
#: constructing a BDD manager is legitimate: the BDD package itself,
#: the file readers, the benchmark builders and the FSM encoder.  All
#: other ``src/repro`` code must receive managers through the
#: ``Session.adopt_manager`` seam.
MANAGER_SEAM_ALLOWED = (
    "src/repro/bdd/",
    "src/repro/io/",
    "src/repro/bench/",
    "src/repro/fsm/",
)

#: Module paths whose ``BDD`` attribute is the manager class.
_BDD_MODULES = ("repro.bdd", "repro.bdd.manager")

#: Modules (repo-root-relative) that marshal data across a process
#: boundary.  They may not import the live-BDD layers at all: anything
#: they ship must already be in the manager-independent store format
#: (``repro.decomp.cache_store``) or a sanitized primitive payload.
PROCESS_BOUNDARY_MODULES = (
    "src/repro/pipeline/parallel.py",
)

#: Package prefixes whose objects are bound to a per-process BDD
#: manager and therefore must never cross a process boundary.
_LIVE_BDD_PACKAGES = ("repro.bdd", "repro.boolfn")


class AstFinding:
    """One astlint finding: file, line, rule id and message."""

    def __init__(self, path, line, rule, message):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self):
        return "%s:%d: [%s] %s" % (self.path, self.line, self.rule,
                                   self.message)


def _relpath(path):
    """Repo-root-relative ``/``-separated form of *path*."""
    path = Path(path).resolve()
    try:
        return path.relative_to(REPO_ROOT).as_posix()
    except ValueError:
        return path.as_posix()


def _is_test_path(rel):
    name = rel.rsplit("/", 1)[-1]
    return "tests/" in rel or name.startswith("test_")


def _bdd_aliases(tree):
    """Names that *tree* binds to the BDD manager class or its module.

    Returns ``(class_names, module_names)`` — identifiers that refer to
    the ``BDD`` class directly, and identifiers that refer to a module
    exposing it as an attribute.
    """
    class_names = set()
    module_names = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom):
            if node.module in _BDD_MODULES:
                for alias in node.names:
                    if alias.name == "BDD":
                        class_names.add(alias.asname or alias.name)
            elif node.module == "repro" and any(
                    alias.name == "bdd" for alias in node.names):
                for alias in node.names:
                    if alias.name == "bdd":
                        module_names.add(alias.asname or alias.name)
        elif isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name in _BDD_MODULES:
                    module_names.add((alias.asname or alias.name)
                                     .split(".", 1)[0])
    return class_names, module_names


def _constructs_manager(call, class_names, module_names):
    func = call.func
    if isinstance(func, ast.Name):
        return func.id in class_names
    if isinstance(func, ast.Attribute) and func.attr == "BDD":
        # repro.bdd.manager.BDD(...) / bdd.BDD(...) attribute chains.
        root = func.value
        while isinstance(root, ast.Attribute):
            root = root.value
        return isinstance(root, ast.Name) and root.id in module_names
    return False


def check_manager_seam(rel, tree):
    """``BDD(...)`` construction outside the allowed factory layers."""
    if not rel.startswith("src/repro/"):
        return
    if any(rel.startswith(prefix) for prefix in MANAGER_SEAM_ALLOWED):
        return
    class_names, module_names = _bdd_aliases(tree)
    if not class_names and not module_names:
        return
    for node in ast.walk(tree):
        if isinstance(node, ast.Call) and _constructs_manager(
                node, class_names, module_names):
            yield AstFinding(
                rel, node.lineno, "manager-seam",
                "BDD manager constructed outside the adopt_manager "
                "seam; pass a manager in (or move the construction "
                "into repro.bdd/io/bench/fsm)")


def _is_live_bdd_module(name):
    return name is not None and any(
        name == pkg or name.startswith(pkg + ".")
        for pkg in _LIVE_BDD_PACKAGES)


def check_process_boundary(rel, tree):
    """Live-BDD imports inside process-boundary marshalling modules."""
    if rel not in PROCESS_BOUNDARY_MODULES:
        return
    for node in ast.walk(tree):
        names = []
        if isinstance(node, ast.Import):
            names = [alias.name for alias in node.names]
        elif isinstance(node, ast.ImportFrom):
            if _is_live_bdd_module(node.module):
                names = [node.module]
            elif node.module == "repro":
                names = ["repro.%s" % alias.name for alias in node.names]
        for name in names:
            if _is_live_bdd_module(name):
                yield AstFinding(
                    rel, node.lineno, "process-boundary",
                    "process-boundary module imports %r; live BDD "
                    "objects must not cross the process boundary — "
                    "exchange store-format dicts "
                    "(repro.decomp.cache_store) instead" % name)


#: Modules (repo-root-relative) that independently audit the engine's
#: output.  Among ``repro`` packages they may import only the neutral
#: layers below — never the decomposition engine or the pipeline they
#: are checking.
CERTIFIER_MODULES = (
    "src/repro/analysis/certify.py",
)

#: The ``repro`` packages a certifier module may import from.
_CERTIFIER_ALLOWED = ("repro.bdd", "repro.boolfn", "repro.io",
                      "repro.network")


def _is_repro_module(name):
    return name is not None and (name == "repro"
                                 or name.startswith("repro."))


def _certifier_allowed(name):
    return any(name == pkg or name.startswith(pkg + ".")
               for pkg in _CERTIFIER_ALLOWED)


def check_certifier_independence(rel, tree):
    """Engine/pipeline imports inside independent-certifier modules."""
    if rel not in CERTIFIER_MODULES:
        return
    for node in ast.walk(tree):
        names = []
        if isinstance(node, ast.Import):
            names = [alias.name for alias in node.names
                     if _is_repro_module(alias.name)]
        elif isinstance(node, ast.ImportFrom):
            if node.module == "repro":
                names = ["repro.%s" % alias.name for alias in node.names]
            elif _is_repro_module(node.module):
                names = [node.module]
        for name in names:
            if not _certifier_allowed(name):
                yield AstFinding(
                    rel, node.lineno, "certifier-independence",
                    "certifier module imports %r; the offline checker "
                    "may only use the neutral layers (%s) so it cannot "
                    "share bugs with the engine it audits"
                    % (name, ", ".join(_CERTIFIER_ALLOWED)))


#: Manager-private storage attributes of the packed-edge BDD arena.
#: Reading (or writing) them couples a module to the node encoding.
_NODE_PRIVATE_ATTRS = ("_lo", "_hi", "_level", "_unique")


def _is_xor_with_one(node):
    """True for ``expr ^ 1`` / ``1 ^ expr`` (complement-bit negation)."""
    if not (isinstance(node, ast.BinOp)
            and isinstance(node.op, ast.BitXor)):
        return False
    for operand in (node.left, node.right):
        if (isinstance(operand, ast.Constant)
                and type(operand.value) is int and operand.value == 1):
            return True
    return False


def check_node_encoding(rel, tree):
    """Packed-edge internals used outside the ``repro.bdd`` package."""
    if not rel.startswith("src/repro/") or rel.startswith("src/repro/bdd/"):
        return
    for node in ast.walk(tree):
        if (isinstance(node, ast.Attribute)
                and node.attr in _NODE_PRIVATE_ATTRS):
            yield AstFinding(
                rel, node.lineno, "node-encoding",
                "manager-private array %r accessed outside repro.bdd; "
                "use the public handle API (mgr.low/high/level, "
                "Function) instead" % node.attr)
        elif _is_xor_with_one(node):
            yield AstFinding(
                rel, node.lineno, "node-encoding",
                "complement-bit arithmetic (`^ 1`) outside repro.bdd; "
                "edge encoding is private — negate through mgr.not_ "
                "or the Function operators")


def check_bare_assert(rel, tree):
    """``assert`` statements in library code (stripped by ``-O``)."""
    if not rel.startswith("src/repro/"):
        return
    for node in ast.walk(tree):
        if isinstance(node, ast.Assert):
            yield AstFinding(
                rel, node.lineno, "bare-assert",
                "bare assert is stripped under python -O; raise a "
                "typed exception instead")


def _registered_stage_names():
    """The ``STAGE_NAMES`` literal from ``repro.pipeline.config``.

    Parsed from source (not imported), so astlint stays runnable
    without ``src`` on ``sys.path``.
    """
    config_path = REPO_ROOT / "src" / "repro" / "pipeline" / "config.py"
    tree = ast.parse(config_path.read_text(), filename=str(config_path))
    for node in ast.walk(tree):
        if isinstance(node, ast.Assign):
            targets = [t.id for t in node.targets
                       if isinstance(t, ast.Name)]
            if "STAGE_NAMES" in targets:
                return set(ast.literal_eval(node.value))
    raise RuntimeError("STAGE_NAMES literal not found in %s" % config_path)


def _literal_stage_names(tree):
    """(line, name) of every stage-name literal in *tree*.

    Covers the two spellings the pipeline layer uses: composition
    tuples ``("name", stage_fn)`` and instrumentation calls
    ``<obj>.stage("name", ...)``.
    """
    for node in ast.walk(tree):
        if (isinstance(node, ast.Tuple) and len(node.elts) == 2
                and isinstance(node.elts[0], ast.Constant)
                and isinstance(node.elts[0].value, str)
                and isinstance(node.elts[1], ast.Name)
                and node.elts[1].id.startswith("stage_")):
            yield node.lineno, node.elts[0].value
        elif (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "stage"
                and node.args
                and isinstance(node.args[0], ast.Constant)
                and isinstance(node.args[0].value, str)):
            yield node.lineno, node.args[0].value


def check_stage_registry(rel, tree, registered=None):
    """Stage-name literals missing from ``PipelineConfig``'s registry."""
    if not rel.startswith("src/repro/"):
        return
    if registered is None:
        registered = _registered_stage_names()
    for line, name in _literal_stage_names(tree):
        if name not in registered:
            yield AstFinding(
                rel, line, "stage-registry",
                "pipeline stage %r is not registered in "
                "repro.pipeline.config.STAGE_NAMES" % name)


CHECKS = (check_manager_seam, check_process_boundary,
          check_certifier_independence, check_node_encoding,
          check_bare_assert, check_stage_registry)


def lint_file(path, registered=None):
    """All findings for one Python file."""
    rel = _relpath(path)
    if _is_test_path(rel):
        return []
    text = Path(path).read_text()
    tree = ast.parse(text, filename=str(path))
    findings = []
    findings.extend(check_manager_seam(rel, tree))
    findings.extend(check_process_boundary(rel, tree))
    findings.extend(check_certifier_independence(rel, tree))
    findings.extend(check_node_encoding(rel, tree))
    findings.extend(check_bare_assert(rel, tree))
    findings.extend(check_stage_registry(rel, tree, registered=registered))
    return findings


def iter_python_files(paths):
    """Python files under *paths* (files kept as-is, dirs walked)."""
    for entry in paths:
        entry = Path(entry)
        if entry.is_dir():
            yield from sorted(entry.rglob("*.py"))
        else:
            yield entry


def main(argv=None):
    """Entry point; returns 0 when clean, 1 when findings exist."""
    paths = list(argv) if argv else ["src/repro", "tools"]
    registered = _registered_stage_names()
    findings = []
    checked = 0
    for path in iter_python_files(paths):
        checked += 1
        findings.extend(lint_file(path, registered=registered))
    for finding in findings:
        print(finding)
    print("astlint: %d finding(s) over %d file(s)"
          % (len(findings), checked))
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
