#!/usr/bin/env python
"""Repo-discipline AST lint — thin shim over ``repro.analysis.repolint``.

The six seam rules that used to live here (manager-seam,
process-boundary, certifier-independence, node-encoding, bare-assert,
stage-registry) are now registered rules in the
:mod:`repro.analysis.repolint` framework, which also gives them a
transitive import graph and runs them alongside the determinism rules
via ``repro selfcheck``.  This file keeps the original one-file-at-a-
time entry points alive for CI invocations (``python tools/astlint.py``)
and existing callers; the per-file checks here cover *direct* evidence
only — the transitive upgrades need the whole-project scan and live in
``repro selfcheck``.  docs/ANALYSIS.md carries the rule catalogue.
"""

import ast
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

try:
    import repro.analysis.repolint  # noqa: F401
except ImportError:  # PYTHONPATH-less CI invocation
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.analysis.repolint import framework as _framework
from repro.analysis.repolint import rules_seams as _seams

#: Re-exported so existing callers keep one source of truth.
MANAGER_SEAM_ALLOWED = _seams.MANAGER_SEAM_ALLOWED


class AstFinding:
    """One finding: file, line, rule id and message."""

    __slots__ = ("path", "line", "rule", "message")

    def __init__(self, path, line, rule, message):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self):
        return "%s:%s: [%s] %s" % (self.path, self.line, self.rule,
                                   self.message)


class _ShimProject:
    __slots__ = ("stage_names",)

    def __init__(self, stage_names):
        self.stage_names = stage_names


class _ShimContext:
    """Adapter giving a repolint file rule one file, no full project."""

    def __init__(self, rel, tree, rule_id, stage_names=None):
        self.rel = rel
        self.tree = tree
        self.project = _ShimProject(stage_names)
        self._rule_id = rule_id

    def finding(self, line, message, data=None):
        return AstFinding(self.rel, line, self._rule_id, message)


def check_manager_seam(rel, tree):
    """BDD construction outside the adopt_manager seam layers."""
    yield from _seams.check_manager_seam(
        _ShimContext(rel, tree, "manager-seam"))


def check_process_boundary(rel, tree):
    """Direct live-BDD imports in process-boundary modules."""
    if rel not in _seams.PROCESS_BOUNDARY_MODULES:
        return
    for line, message in _seams.direct_process_boundary_findings(
            rel, tree):
        yield AstFinding(rel, line, "process-boundary", message)


def check_certifier_independence(rel, tree):
    """Direct off-allowlist repro imports in certifier modules."""
    if rel not in _seams.CERTIFIER_MODULES:
        return
    for line, message in _seams.direct_certifier_findings(rel, tree):
        yield AstFinding(rel, line, "certifier-independence", message)


def check_node_encoding(rel, tree):
    """Manager-private attrs / complement-bit math outside repro.bdd."""
    yield from _seams.check_node_encoding(
        _ShimContext(rel, tree, "node-encoding"))


def check_bare_assert(rel, tree):
    """``assert`` in library code (stripped under ``python -O``)."""
    yield from _seams.check_bare_assert(
        _ShimContext(rel, tree, "bare-assert"))


def check_stage_registry(rel, tree, registered=None):
    """Stage-name literals missing from ``STAGE_NAMES``."""
    yield from _seams.check_stage_registry(
        _ShimContext(rel, tree, "stage-registry", stage_names=registered))


CHECKS = (
    check_manager_seam,
    check_process_boundary,
    check_certifier_independence,
    check_node_encoding,
    check_bare_assert,
    check_stage_registry,
)


def _registered_stage_names():
    """``STAGE_NAMES`` parsed from the pipeline config source."""
    return _framework.registered_stage_names(REPO_ROOT)


def _relpath(path):
    path = Path(path).resolve()
    try:
        return path.relative_to(REPO_ROOT).as_posix()
    except ValueError:
        return path.as_posix()


def iter_python_files(paths):
    """Python files under *paths* (files kept as-is, dirs walked)."""
    yield from _framework.iter_python_files(paths)


def lint_file(path, registered=None):
    """All findings for one file (test files are skipped)."""
    path = Path(path)
    rel = _relpath(path)
    if _framework.is_test_path(rel) or path.name.startswith("test_"):
        return []
    tree = ast.parse(path.read_text(), filename=str(path))
    findings = []
    for check in CHECKS:
        if check is check_stage_registry:
            findings.extend(check(rel, tree, registered=registered))
        else:
            findings.extend(check(rel, tree))
    return findings


def main(argv=None):
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    paths = [Path(arg) for arg in argv] if argv else [
        REPO_ROOT / "src" / "repro", REPO_ROOT / "tools"]
    registered = _registered_stage_names()
    findings = []
    checked = 0
    for path in iter_python_files(paths):
        checked += 1
        findings.extend(lint_file(path, registered=registered))
    for finding in findings:
        print(finding)
    print("astlint: %d finding(s) over %d file(s)"
          % (len(findings), checked))
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
