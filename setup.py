"""Legacy setup shim.

This offline environment has no ``wheel`` package, so pip's PEP 660
editable path (which shells out to ``bdist_wheel``) fails.  Providing a
``setup.py`` lets ``pip install -e .`` use the legacy ``setup.py
develop`` route, which needs nothing from the network.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=("Reproduction of 'An Algorithm for Bi-Decomposition of "
                 "Logic Functions' (DAC 2001)"),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
    entry_points={
        "console_scripts": ["repro=repro.cli:main"],
    },
)
