"""Quickstart: decompose an incompletely specified function.

Builds the paper's running example style of ISF (an on-set plus a
don't-care set), runs it through the instrumented pipeline, and prints
the resulting two-input gate netlist, its cost, the per-stage timing
events, and the BLIF output.

Run:  python examples/quickstart.py
"""

from repro.bdd import BDD
from repro.boolfn import ISF, parse
from repro.pipeline import Pipeline, PipelineConfig, PipelineInput, Session


def main():
    # A 6-variable specification with don't-cares.  The on-set demands
    # 1 on two regions; the don't-care set frees a third region for the
    # decomposition to exploit.
    mgr = BDD(["a", "b", "c", "d", "e", "f"])
    on = parse(mgr, "(a & b & ~c) | (d & e & f) | (a & d & (b ^ e))")
    dc = parse(mgr, "(c & ~d & ~e) | (~a & ~b & f)")
    spec = ISF.from_on_dc(on, dc)

    print("specification:")
    print("  on-set minterms :", spec.on.sat_count())
    print("  don't-cares     :", spec.dc.sat_count())
    print("  off-set minterms:", spec.off.sat_count())

    # A Session owns the BDD manager, the validated config, and an event
    # bus; the standard pipeline runs parse -> build_isfs -> preprocess
    # -> decompose -> verify -> emit inside it.  Supplying prebuilt
    # specs skips the parse/build stages (they still emit their events,
    # flagged skipped=True).
    session = Session(PipelineConfig(verify=True))
    run = Pipeline.standard().run(
        session, PipelineInput(mgr=mgr, specs={"y": spec},
                               label="quickstart"))
    result = run.result

    stats = run.netlist_stats()
    print("\ndecomposed netlist:")
    print("  gates    :", stats.gates)
    print("  exors    :", stats.exors)
    print("  area     :", stats.area)
    print("  cascades :", stats.cascades)
    print("  delay    :", stats.delay)
    print("  decomposition steps:", result.stats.as_dict())

    # Every stage published stage_started/stage_finished events on the
    # session bus; the run keeps the finished payloads in order.
    print("\nper-stage breakdown:")
    for payload in run.stages:
        flag = " (skipped)" if payload.get("skipped") else ""
        print("  %-10s %.6fs  bdd_nodes=%d%s"
              % (payload["stage"], payload["elapsed"],
                 payload["bdd_nodes"], flag))

    # The verify stage already checked the produced function is one
    # concrete completely specified member of the interval.
    print("\nverification: OK (output compatible with the interval)")

    print("\nBLIF output:")
    print(run.blif)


if __name__ == "__main__":
    main()
