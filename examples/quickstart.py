"""Quickstart: decompose an incompletely specified function.

Builds the paper's running example style of ISF (an on-set plus a
don't-care set), runs bi-decomposition, and prints the resulting
two-input gate netlist, its cost, and the BLIF output.

Run:  python examples/quickstart.py
"""

from repro.bdd import BDD
from repro.boolfn import ISF, parse
from repro.decomp import bi_decompose
from repro.io import write_blif
from repro.network import verify_against_isfs


def main():
    # A 6-variable specification with don't-cares.  The on-set demands
    # 1 on two regions; the don't-care set frees a third region for the
    # decomposition to exploit.
    mgr = BDD(["a", "b", "c", "d", "e", "f"])
    on = parse(mgr, "(a & b & ~c) | (d & e & f) | (a & d & (b ^ e))")
    dc = parse(mgr, "(c & ~d & ~e) | (~a & ~b & f)")
    spec = ISF.from_on_dc(on, dc)

    print("specification:")
    print("  on-set minterms :", spec.on.sat_count())
    print("  don't-cares     :", spec.dc.sat_count())
    print("  off-set minterms:", spec.off.sat_count())

    result = bi_decompose({"y": spec}, verify=True)

    stats = result.netlist_stats()
    print("\ndecomposed netlist:")
    print("  gates    :", stats.gates)
    print("  exors    :", stats.exors)
    print("  area     :", stats.area)
    print("  cascades :", stats.cascades)
    print("  delay    :", stats.delay)
    print("  decomposition steps:", result.stats.as_dict())

    # The produced function is one concrete completely specified member
    # of the interval: every required 1 and 0 is honoured.
    verify_against_isfs(result.netlist, {"y": spec})
    print("\nverification: OK (output compatible with the interval)")

    print("\nBLIF output:")
    print(write_blif(result.netlist, model="quickstart"))


if __name__ == "__main__":
    main()
