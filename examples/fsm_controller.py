"""Sequential synthesis: where the paper's don't-cares come from.

Encodes a small KISS2 controller and synthesises its next-state and
output logic with the bi-decomposition engine.  Sequential logic is
the classic source of incompletely specified functions: unused state
codes, unspecified transitions and '-' output entries all become
don't-cares.  The example measures what that freedom is worth by
synthesising the same machine with the don't-cares pinned to 0.

Run:  python examples/fsm_controller.py
"""

from repro.fsm import check_against_fsm, parse_kiss, synthesize_fsm
from repro.io import write_blif

# A 5-state bus-grant controller: two request lines, grant + busy
# outputs.  Several (state, input) combinations can never occur and
# some outputs are unspecified — free don't-cares for the synthesis.
CONTROLLER = """\
.i 2
.o 2
.s 5
.r IDLE
00 IDLE  IDLE  00
01 IDLE  GNT1  10
1- IDLE  GNT0  10
00 GNT0  REL   0-
1- GNT0  GNT0  11
01 GNT0  REL   01
00 GNT1  REL   0-
-1 GNT1  GNT1  11
10 GNT1  REL   01
-- REL   COOL  0-
00 COOL  IDLE  00
-1 COOL  GNT1  10
10 COOL  GNT0  10
.e
"""


def main():
    fsm = parse_kiss(CONTROLLER)
    print("controller:", fsm)

    synth = synthesize_fsm(fsm, encoding="binary")
    checked = check_against_fsm(synth)
    stats = synth.result.netlist_stats()
    print("binary encoding, don't-cares exploited:")
    print("  behavioural check: %d (state, input) pairs agree" % checked)
    print("  logic: gates=%d exors=%d area=%.1f delay=%.1f"
          % (stats.gates, stats.exors, stats.area, stats.delay))

    pinned = synthesize_fsm(fsm, encoding="binary",
                            use_dont_cares=False)
    check_against_fsm(pinned)
    pinned_stats = pinned.result.netlist_stats()
    print("same machine, don't-cares pinned to 0:")
    print("  logic: gates=%d area=%.1f"
          % (pinned_stats.gates, pinned_stats.area))
    print("  -> sequential don't-cares save %.0f%% area"
          % (100.0 * (1 - stats.area / pinned_stats.area)))

    onehot = synthesize_fsm(fsm, encoding="onehot")
    check_against_fsm(onehot)
    onehot_stats = onehot.result.netlist_stats()
    print("one-hot encoding: gates=%d area=%.1f (more state bits, "
          "simpler per-bit logic)" % (onehot_stats.gates,
                                      onehot_stats.area))

    # Drive the synthesised netlist through a request scenario.
    print("\nrequest scenario through the synthesised logic:")
    codes = synth.encoded.codes
    names = {code: name for name, code in codes.items()}
    state = codes[fsm.reset_state]
    for inputs in [(0, 0), (1, 0), (1, 0), (0, 1), (0, 0), (0, 0),
                   (0, 1)]:
        next_code, outputs = synth.step(names[state], inputs)
        print("  %-5s req=%s -> %-5s grant=%d busy=%d"
              % (names[state], inputs, names.get(next_code, "?"),
                 outputs[0], outputs[1]))
        state = next_code

    print("\nBLIF of the controller logic:")
    print(write_blif(synth.netlist, model="controller")[:400] + "...")


if __name__ == "__main__":
    main()
