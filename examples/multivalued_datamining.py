"""Multi-valued bi-decomposition on a data-mining style task.

The paper's conclusion announces "generalization of the algorithm for
multi-valued logic with potential applications in datamining".  This
example plays that scenario out: a small categorical data set (sparse
observations of a 3-valued class over four multi-valued attributes) is
treated as an incompletely specified MV function — unobserved attribute
combinations are don't-cares — and decomposed into a MIN/MAX/literal
gate network, i.e. an executable, compact classifier.

Run:  python examples/multivalued_datamining.py
"""

import numpy as np

from repro.mvlogic import MVISF, mv_decompose

#: Attribute domains: weather(3), temperature(3), wind(2), humidity(2).
DOMAINS = (3, 3, 2, 2)
#: Class domain: {0: stay home, 1: short walk, 2: long hike}.
CLASSES = 3

ATTRS = ("weather", "temp", "wind", "humidity")
WEATHER = ("rain", "cloudy", "sunny")
TEMP = ("cold", "mild", "hot")
LEVEL = ("low", "high")
DECISION = ("stay-home", "short-walk", "long-hike")


def observations():
    """A sparse training table: (weather, temp, wind, humidity) -> class."""
    return [
        ((0, 0, 1, 1), 0),   # rain, cold, windy, humid     -> stay home
        ((0, 1, 0, 1), 0),   # rain, mild, calm, humid      -> stay home
        ((0, 2, 0, 0), 1),   # rain, hot, calm, dry         -> short walk
        ((1, 0, 1, 0), 0),   # cloudy, cold, windy, dry     -> stay home
        ((1, 1, 0, 0), 2),   # cloudy, mild, calm, dry      -> long hike
        ((1, 1, 1, 1), 1),   # cloudy, mild, windy, humid   -> short walk
        ((1, 2, 0, 1), 1),   # cloudy, hot, calm, humid     -> short walk
        ((2, 0, 0, 0), 1),   # sunny, cold, calm, dry       -> short walk
        ((2, 1, 0, 0), 2),   # sunny, mild, calm, dry       -> long hike
        ((2, 1, 1, 0), 2),   # sunny, mild, windy, dry      -> long hike
        ((2, 2, 0, 1), 1),   # sunny, hot, calm, humid      -> short walk
        ((2, 2, 1, 0), 2),   # sunny, hot, windy, dry       -> long hike
    ]


def main():
    rows = observations()
    isf = MVISF.from_table(DOMAINS, CLASSES, rows)
    total = int(np.prod(DOMAINS))
    print("training rows: %d of %d input points (%d don't-cares)"
          % (len(rows), total, total - len(rows)))

    netlist, _values, stats = mv_decompose({"decision": isf},
                                           DOMAINS, CLASSES)
    print("decomposition steps:", stats.as_dict())
    print("gate counts:", netlist.gate_counts())

    out = netlist.evaluate_outputs()["decision"]
    errors = sum(1 for point, label in rows
                 if out[tuple(point)] != label)
    print("training accuracy: %d/%d" % (len(rows) - errors, len(rows)))
    assert errors == 0, "the network must reproduce every observation"

    print("\ngeneralisation on unseen inputs (don't-care points):")
    for point in [(2, 1, 0, 1), (0, 0, 0, 0), (1, 2, 1, 0)]:
        decision = DECISION[out[point]]
        described = ", ".join("%s=%s" % (name, domain[value])
                              for name, domain, value in zip(
                                  ATTRS, (WEATHER, TEMP, LEVEL, LEVEL),
                                  point))
        print("  %-45s -> %s" % (described, decision))


if __name__ == "__main__":
    main()
