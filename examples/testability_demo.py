"""Theorem 5 in action: non-redundant netlists and integrated ATPG.

Decomposes a benchmark, proves every single stuck-at fault testable
with the BDD-based analysis, generates a compact test set, and
cross-checks it by bit-parallel fault simulation.  For contrast, a
hand-built redundant netlist is shown to be caught by the same
analysis.

Run:  python examples/testability_demo.py
"""

from repro.bdd import BDD
from repro.bench import get
from repro.decomp import bi_decompose
from repro.network import Netlist
from repro.testability import (analyze_testability, care_sets,
                               generate_test_set, patterns_by_name,
                               simulate_coverage)


def decomposed_netlist_is_fully_testable():
    name = "rd84"
    mgr, specs = get(name).build()
    result = bi_decompose(specs, verify=True)
    netlist = result.netlist
    cares = care_sets(specs)

    report = analyze_testability(netlist, mgr, cares)
    print("%s decomposition: %s" % (name, report))
    assert report.fully_testable(), "Theorem 5 violated!"

    patterns, redundant = generate_test_set(netlist, mgr, cares)
    print("ATPG: %d test patterns cover all %d faults (%d redundant)"
          % (len(patterns), report.total, len(redundant)))

    named = patterns_by_name(mgr, patterns)
    detected, undetected = simulate_coverage(netlist, named)
    print("fault simulation confirms: %d/%d detected by the test set"
          % (len(detected), len(detected) + len(undetected)))


def redundant_netlist_is_caught():
    # f = (a & b) | (a & b & c): the second AND cone is redundant, so
    # several of its faults are untestable.
    mgr = BDD(["a", "b", "c"])
    netlist = Netlist(["a", "b", "c"])
    a, b, c = netlist.inputs
    ab = netlist.add_and(a, b)
    abc = netlist._hashed("AND", (ab, c))   # bypass hashing cleanups
    out = netlist._hashed("OR", (ab, abc))  # redundant OR branch
    netlist.set_output("f", out)

    report = analyze_testability(netlist, mgr)
    print("\nhand-built redundant netlist: %s" % report)
    for fault in report.redundant:
        print("  redundant:", fault)
    assert not report.fully_testable()


def main():
    decomposed_netlist_is_fully_testable()
    redundant_netlist_is_caught()


if __name__ == "__main__":
    main()
