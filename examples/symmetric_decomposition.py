"""EXOR-intensive functions: where bi-decomposition shines.

Decomposes the symmetric MCNC functions (9sym, rd84) with the
bi-decomposition algorithm and with the two baselines, showing the
paper's headline effect: EXOR bi-decomposition keeps symmetric
functions small, while the SOP-based flow (which, like SIS, never emits
EXOR gates) explodes.

Run:  python examples/symmetric_decomposition.py
"""

from repro.baselines import bds_like_synthesize, sis_like_synthesize
from repro.bench import get
from repro.decomp import bi_decompose
from repro.network import verify_against_isfs


def run_one(name):
    bench = get(name)
    mgr, specs = bench.build()

    bidecomp = bi_decompose(specs, verify=True)
    sis = sis_like_synthesize(specs, factor=False)   # the paper's SIS setup
    bds = bds_like_synthesize(specs)
    verify_against_isfs(sis.netlist, specs)
    verify_against_isfs(bds.netlist, specs)

    print("\n%s (%d inputs, %d outputs) — %s"
          % (name, bench.inputs, bench.outputs, bench.note))
    print("  %-22s %7s %7s %9s %6s %8s"
          % ("flow", "gates", "exors", "area", "casc", "delay"))
    for label, stats in (("BI-DECOMP", bidecomp.netlist_stats()),
                         ("SIS-like (SOP map)", sis.netlist_stats()),
                         ("BDS-like (BDD cuts)", bds.netlist_stats())):
        print("  %-22s %7d %7d %9.1f %6d %8.1f"
              % (label, stats.gates, stats.exors, stats.area,
                 stats.cascades, stats.delay))
    used = bidecomp.stats
    print("  strong steps: OR=%d AND=%d EXOR=%d | weak: OR=%d AND=%d"
          % (used.strong["OR"], used.strong["AND"], used.strong["XOR"],
             used.weak["OR"], used.weak["AND"]))


def main():
    for name in ("9sym", "rd84", "t481"):
        run_one(name)


if __name__ == "__main__":
    main()
