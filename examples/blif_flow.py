"""End-to-end file flow: PLA in, decomposition, BLIF out, re-verify.

Mirrors the paper's experimental pipeline: "Both programs used the PLA
input files ... the CPU time needed to perform the bi-decomposition and
write the results into a BLIF file".  The whole flow runs through
:class:`repro.pipeline.Session` — the same instrumented path as
``python -m repro.cli decompose`` — so the per-stage report the CLI
writes with ``--stats-json`` is available here as ``run.stats_json()``.

Run:  python examples/blif_flow.py
"""

import json
import os
import tempfile

from repro.io import parse_blif, parse_pla, write_pla
from repro.network import to_nand_network, verify_equivalent
from repro.pipeline import Pipeline, PipelineConfig, PipelineInput, Session

EXAMPLE_PLA = """\
# A small fd-type control PLA with output don't-cares.
.i 5
.o 3
.ilb a b c d e
.ob u v w
.type fd
.p 7
11--- 100
--110 110
0--01 011
1-1-1 0-0
--000 001
01-1- -10
00--1 01-
.e
"""


def main():
    data = parse_pla(EXAMPLE_PLA)
    print("parsed PLA: %d inputs, %d outputs, %d cubes"
          % (data.num_inputs, data.num_outputs, len(data.cubes)))

    with tempfile.TemporaryDirectory() as tmp:
        blif_path = os.path.join(tmp, "out.blif")

        # One session = one BDD manager + config + event bus; the
        # standard pipeline parses, builds ISFs, decomposes, verifies
        # and emits the BLIF file in named, timed stages.
        session = Session(PipelineConfig(verify=True, model="blif_flow"))
        run = Pipeline.standard().run(
            session, PipelineInput(text=EXAMPLE_PLA, label="blif_flow",
                                   emit_path=blif_path))
        mgr, specs = run.mgr, run.specs
        print("decomposed:", run.netlist_stats())
        print("wrote", blif_path)

        # The structured run report (what the CLI's --stats-json emits).
        report = run.stats_json(config=session.config)
        print("stage times:",
              json.dumps({s["stage"]: round(s["elapsed"], 6)
                          for s in report["stages"]}))
        print("cache hit rate: %.2f" % report.get("cache_hit_rate", 0.0))

        # Read the BLIF back on the same manager and check every output
        # stays inside its specification interval.
        with open(blif_path) as handle:
            _mgr, outputs = parse_blif(handle.read(), mgr=mgr)
        for name, isf in specs.items():
            assert isf.is_compatible(outputs[name]), name
        print("re-parsed BLIF verifies against the PLA specification")

        # Round-trip the specification itself through the PLA writer.
        pla_path = os.path.join(tmp, "spec.pla")
        write_pla(specs, ["a", "b", "c", "d", "e"], path=pla_path)
        data2 = parse_pla(open(pla_path).read())
        _mgr2, specs2 = data2.to_isfs(mgr=mgr)
        assert all(specs2[name] == specs[name] for name in specs)
        print("PLA round-trip preserves the interval exactly")

    # Bonus: remap to a NAND-only library (the paper's future-work item)
    # and verify structural equivalence on the care set.
    nand = to_nand_network(run.netlist)
    verify_equivalent(run.netlist, nand, mgr)
    print("NAND-only remap verified equivalent")


if __name__ == "__main__":
    main()
