"""Standard-cell mapping flow (the paper's library future-work item).

Decomposes a benchmark into the two-input AND/OR/EXOR netlist, then
covers it with a conventional standard-cell library by dynamic-
programming tree covering, verifying every chosen cell against the BDD
of its cone.  A custom NAND/INV-only library shows the mapper is
library-agnostic.

Run:  python examples/mapping_flow.py
"""

from repro.bench import get
from repro.decomp import bi_decompose
from repro.network import (Cell, compute_stats, default_library,
                           map_netlist, verify_mapping)
from repro.network.mapper import LEAF, _p_and, _p_not


def nand_inv_library():
    """A minimal, universal two-cell library."""
    return [
        Cell("INV", 1.0, 0.5, [_p_not(LEAF)], lambda mgr, a: mgr.not_(a)),
        Cell("NAND2", 2.0, 1.0, [_p_not(_p_and(LEAF, LEAF))],
             lambda mgr, a, b: mgr.nand(a, b)),
        Cell("AND2", 3.0, 1.2, [_p_and(LEAF, LEAF)],
             lambda mgr, a, b: mgr.and_(a, b)),
    ]


def main():
    for name in ("rd84", "t481", "misex1"):
        bench = get(name)
        mgr, specs = bench.build()
        result = bi_decompose(specs, verify=True)
        netlist_stats = compute_stats(result.netlist)

        print("\n%s (%d/%d): decomposed netlist gates=%d area=%.1f"
              % (name, bench.inputs, bench.outputs, netlist_stats.gates,
                 netlist_stats.area))

        mapping = map_netlist(result.netlist)
        verify_mapping(mapping, mgr)
        print("  full library : cells=%3d area=%7.1f delay=%5.1f  %s"
              % (sum(mapping.cell_counts.values()), mapping.area,
                 mapping.delay,
                 " ".join("%s:%d" % kv
                          for kv in sorted(mapping.cell_counts.items()))))

        small = map_netlist(result.netlist, nand_inv_library())
        verify_mapping(small, mgr)
        print("  NAND/INV only: cells=%3d area=%7.1f delay=%5.1f"
              % (sum(small.cell_counts.values()), small.area,
                 small.delay))


if __name__ == "__main__":
    main()
